//! Message-level fault models, composable alongside [`NetworkModel`].
//!
//! Where a [`NetworkModel`](crate::NetworkModel) decides *when* a message
//! arrives, a [`FaultModel`] decides *whether* — and in how many copies,
//! and how mangled. The split mirrors the PVM-era reality the paper ran
//! on: UDP-like transports lose and duplicate datagrams, links partition,
//! and whole workstations reboot mid-run. A lost `X_k(t)` is just an
//! infinitely-delayed one, so the speculative driver's BW extrapolation
//! already contains the recovery mechanism; this module supplies the
//! deterministic adversary.
//!
//! All stochastic models take explicit seeds and draw from their own
//! [`SmallRng`] stream, so a run is bit-reproducible per seed under the
//! desim virtual clock. Models compose with [`FaultStack`] (every layer is
//! always consulted, keeping RNG streams aligned regardless of what other
//! layers decide) and can be confined to a virtual-time window with
//! [`FaultPlan`].

use desim::{SimDuration, SimTime};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::network::MsgCtx;

/// What the fault layer decided for one message.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Fate {
    /// Deliver the message at all? `false` means no copy arrives —
    /// duplication of a dropped message does not resurrect it.
    pub deliver: bool,
    /// Extra copies to deliver beyond the original, each re-consulting the
    /// network model for its own delay.
    pub extra_copies: u32,
    /// Relative payload perturbation amplitude; `0.0` leaves the payload
    /// untouched. How the amplitude maps onto a concrete payload is the
    /// transport's business (it knows the message type).
    pub corrupt_amp: f64,
}

impl Fate {
    /// Unperturbed delivery.
    pub fn clean() -> Fate {
        Fate {
            deliver: true,
            extra_copies: 0,
            corrupt_amp: 0.0,
        }
    }

    /// The message never arrives.
    pub fn dropped() -> Fate {
        Fate {
            deliver: false,
            extra_copies: 0,
            corrupt_amp: 0.0,
        }
    }

    /// Combine two layers' decisions: a drop anywhere wins, copies add up,
    /// and the strongest corruption applies.
    pub fn merge(self, other: Fate) -> Fate {
        Fate {
            deliver: self.deliver && other.deliver,
            extra_copies: self.extra_copies + other.extra_copies,
            corrupt_amp: self.corrupt_amp.max(other.corrupt_amp),
        }
    }
}

/// A model mapping each message to its [`Fate`]. Called exactly once per
/// send, in deterministic order, before the network model is consulted.
pub trait FaultModel: Send {
    /// Decide this message's fate.
    fn fate(&mut self, ctx: &MsgCtx) -> Fate;
}

/// Boxed model for heterogeneous composition at runtime.
pub type BoxedFaultModel = Box<dyn FaultModel>;

impl FaultModel for BoxedFaultModel {
    fn fate(&mut self, ctx: &MsgCtx) -> Fate {
        (**self).fate(ctx)
    }
}

/// The identity fault model: every message arrives exactly once, intact.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoFaults;

impl FaultModel for NoFaults {
    fn fate(&mut self, _ctx: &MsgCtx) -> Fate {
        Fate::clean()
    }
}

/// Independent per-message loss with probability `p`.
pub struct Loss {
    p: f64,
    rng: SmallRng,
}

impl Loss {
    /// Drop each message with probability `p`, deterministically per
    /// `seed`.
    pub fn new(p: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "loss probability must be in [0,1]"
        );
        Loss {
            p,
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl FaultModel for Loss {
    fn fate(&mut self, _ctx: &MsgCtx) -> Fate {
        if self.rng.gen_bool(self.p) {
            Fate::dropped()
        } else {
            Fate::clean()
        }
    }
}

/// Independent per-message duplication with probability `p`: an affected
/// message is delivered twice.
pub struct Duplicate {
    p: f64,
    rng: SmallRng,
}

impl Duplicate {
    /// Duplicate each message with probability `p`, deterministically per
    /// `seed`.
    pub fn new(p: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "duplication probability must be in [0,1]"
        );
        Duplicate {
            p,
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl FaultModel for Duplicate {
    fn fate(&mut self, _ctx: &MsgCtx) -> Fate {
        let mut f = Fate::clean();
        if self.rng.gen_bool(self.p) {
            f.extra_copies = 1;
        }
        f
    }
}

/// Independent per-message payload corruption: with probability `p` the
/// payload is perturbed with relative amplitude drawn uniformly from
/// `(0, amp]`.
///
/// The perturbation stays within θ semantics by design: a corrupted value
/// is just a slightly-wrong one, exactly the shape of error the paper's
/// check/correct machinery (|X̂ - X| against θ) already classifies and
/// repairs, so corruption needs no new driver machinery — only honesty
/// from the transport about applying it before delivery.
pub struct Corrupt {
    p: f64,
    amp: f64,
    rng: SmallRng,
}

impl Corrupt {
    /// Corrupt each message with probability `p` and relative amplitude up
    /// to `amp`, deterministically per `seed`.
    pub fn new(p: f64, amp: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "corruption probability must be in [0,1]"
        );
        assert!(amp > 0.0, "corruption amplitude must be positive");
        Corrupt {
            p,
            amp,
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl FaultModel for Corrupt {
    fn fate(&mut self, _ctx: &MsgCtx) -> Fate {
        let mut f = Fate::clean();
        if self.rng.gen_bool(self.p) {
            // Draw even when amp maps to the same value so the stream stays
            // one-draw-per-hit regardless of amplitude.
            f.corrupt_amp = self.amp * self.rng.gen::<f64>().max(f64::MIN_POSITIVE);
        }
        f
    }
}

/// Both directions of one link are dead during `[from, until)`.
#[derive(Clone, Copy, Debug)]
pub struct LinkPartition {
    /// One endpoint.
    pub a: usize,
    /// The other endpoint.
    pub b: usize,
    /// Partition start (inclusive), virtual time.
    pub from: SimTime,
    /// Partition end (exclusive), virtual time.
    pub until: SimTime,
}

impl FaultModel for LinkPartition {
    fn fate(&mut self, ctx: &MsgCtx) -> Fate {
        let on_link =
            (ctx.src == self.a && ctx.dst == self.b) || (ctx.src == self.b && ctx.dst == self.a);
        if on_link && ctx.now >= self.from && ctx.now < self.until {
            Fate::dropped()
        } else {
            Fate::clean()
        }
    }
}

/// Scripted per-message fates, identified by `(src, dst, occurrence)`: the
/// n-th message from `src` to `dst` (0-based) gets the listed fate — the
/// fault-layer analogue of [`ScriptedDelays`](crate::ScriptedDelays).
pub struct ScriptedFaults {
    script: Vec<(usize, usize, u64, Fate)>,
    counts: std::collections::HashMap<(usize, usize), u64>,
}

impl ScriptedFaults {
    /// A script of `(src, dst, nth, fate)` injections; unlisted messages
    /// pass clean.
    pub fn new(script: Vec<(usize, usize, u64, Fate)>) -> Self {
        ScriptedFaults {
            script,
            counts: std::collections::HashMap::new(),
        }
    }
}

impl FaultModel for ScriptedFaults {
    fn fate(&mut self, ctx: &MsgCtx) -> Fate {
        let n = self.counts.entry((ctx.src, ctx.dst)).or_insert(0);
        let occurrence = *n;
        *n += 1;
        let mut fate = Fate::clean();
        for (src, dst, nth, f) in &self.script {
            if *src == ctx.src && *dst == ctx.dst && *nth == occurrence {
                fate = fate.merge(*f);
            }
        }
        fate
    }
}

/// A schedule of fault models, each active only inside its virtual-time
/// window — e.g. a 100 ms burst of 50% loss mid-run.
///
/// Every window's model is consulted on every message, active or not, so
/// each layer's RNG stream advances identically whether or not its window
/// is open; only active windows contribute to the merged fate. That keeps
/// a run with a window bit-identical, outside the window, to a run whose
/// window never opens.
#[derive(Default)]
pub struct FaultPlan {
    windows: Vec<(SimTime, SimTime, Box<dyn FaultModel>)>,
}

impl FaultPlan {
    /// An empty plan (identity).
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `model`, active during `[from, until)`.
    pub fn window(
        mut self,
        from: SimTime,
        until: SimTime,
        model: impl FaultModel + 'static,
    ) -> Self {
        assert!(from < until, "fault window must be non-empty");
        self.windows.push((from, until, Box::new(model)));
        self
    }
}

impl FaultModel for FaultPlan {
    fn fate(&mut self, ctx: &MsgCtx) -> Fate {
        let mut fate = Fate::clean();
        for (from, until, model) in &mut self.windows {
            let f = model.fate(ctx);
            if ctx.now >= *from && ctx.now < *until {
                fate = fate.merge(f);
            }
        }
        fate
    }
}

/// A stack of fault models applied to every message: loss composed with
/// duplication composed with a partition, etc. All layers are always
/// consulted (aligned RNG streams); fates merge per [`Fate::merge`].
#[derive(Default)]
pub struct FaultStack {
    layers: Vec<Box<dyn FaultModel>>,
}

impl FaultStack {
    /// An empty stack (identity).
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a layer.
    pub fn with(mut self, model: impl FaultModel + 'static) -> Self {
        self.layers.push(Box::new(model));
        self
    }
}

impl FaultModel for FaultStack {
    fn fate(&mut self, ctx: &MsgCtx) -> Fate {
        let mut fate = Fate::clean();
        for layer in &mut self.layers {
            fate = fate.merge(layer.fate(ctx));
        }
        fate
    }
}

/// A scripted whole-machine crash: at virtual time `at`, rank `rank` loses
/// all volatile state (in-flight iterations, mailbox, peer histories) and
/// rejoins `restart_after` later, re-seeded from its last confirmed
/// checkpoint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MachineCrash {
    /// The rank that crashes.
    pub rank: usize,
    /// Virtual time of the crash.
    pub at: SimTime,
    /// Outage duration; the rank is back at `at + restart_after`.
    pub restart_after: SimDuration,
}

impl MachineCrash {
    /// A crash the machine never recovers from: `rank` goes down at `at`
    /// and stays down for the rest of the run. Survivors must finish in
    /// degraded mode, carrying its partition by speculation alone.
    pub fn permanent(rank: usize, at: SimTime) -> Self {
        MachineCrash {
            rank,
            at,
            restart_after: SimDuration::MAX,
        }
    }

    /// When the machine is reachable again ([`SimTime::MAX`] for a
    /// permanent crash — `SimTime + SimDuration` saturates).
    pub fn back_at(&self) -> SimTime {
        self.at + self.restart_after
    }

    /// True when the machine never comes back.
    pub fn is_permanent(&self) -> bool {
        self.back_at() == SimTime::MAX
    }
}

/// The crash schedule of a whole cluster run.
#[derive(Clone, Debug, Default)]
pub struct CrashPlan {
    crashes: Vec<MachineCrash>,
}

impl CrashPlan {
    /// No crashes.
    pub fn none() -> Self {
        Self::default()
    }

    /// A plan from a crash list.
    pub fn new(crashes: Vec<MachineCrash>) -> Self {
        CrashPlan { crashes }
    }

    /// Is `rank` down at virtual time `t`? Messages sent to a down rank
    /// are lost, like datagrams to a rebooting host.
    pub fn is_down(&self, rank: usize, t: SimTime) -> bool {
        self.crashes
            .iter()
            .any(|c| c.rank == rank && t >= c.at && t < c.back_at())
    }

    /// The scripted crashes of one rank, in time order.
    pub fn crashes_for(&self, rank: usize) -> Vec<MachineCrash> {
        let mut own: Vec<MachineCrash> = self
            .crashes
            .iter()
            .filter(|c| c.rank == rank)
            .copied()
            .collect();
        own.sort_by_key(|c| c.at);
        own
    }

    /// All scripted crashes.
    pub fn crashes(&self) -> &[MachineCrash] {
        &self.crashes
    }

    /// True when no crash is scripted.
    pub fn is_empty(&self) -> bool {
        self.crashes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(src: usize, dst: usize, now_ns: u64) -> MsgCtx {
        MsgCtx {
            src,
            dst,
            bytes: 100,
            now: SimTime::from_nanos(now_ns),
        }
    }

    fn fates(model: &mut impl FaultModel, n: usize) -> Vec<Fate> {
        (0..n).map(|i| model.fate(&ctx(0, 1, i as u64))).collect()
    }

    #[test]
    fn loss_zero_is_identity() {
        let mut m = Loss::new(0.0, 7);
        assert!(fates(&mut m, 100).iter().all(|f| *f == Fate::clean()));
    }

    #[test]
    fn loss_one_drops_everything() {
        let mut m = Loss::new(1.0, 7);
        assert!(fates(&mut m, 100).iter().all(|f| !f.deliver));
    }

    #[test]
    fn loss_is_deterministic_per_seed() {
        let a = fates(&mut Loss::new(0.3, 42), 200);
        let b = fates(&mut Loss::new(0.3, 42), 200);
        let c = fates(&mut Loss::new(0.3, 43), 200);
        assert_eq!(a, b);
        assert_ne!(a, c, "different seeds should diverge at p=0.3, n=200");
    }

    #[test]
    fn loss_rate_tracks_probability() {
        let dropped = fates(&mut Loss::new(0.2, 11), 5000)
            .iter()
            .filter(|f| !f.deliver)
            .count();
        let rate = dropped as f64 / 5000.0;
        assert!((0.15..0.25).contains(&rate), "rate {rate}");
    }

    #[test]
    fn duplicate_adds_copies_without_dropping() {
        let fs = fates(&mut Duplicate::new(0.5, 3), 1000);
        assert!(fs.iter().all(|f| f.deliver));
        let copies: u32 = fs.iter().map(|f| f.extra_copies).sum();
        assert!(copies > 300 && copies < 700, "copies {copies}");
    }

    #[test]
    fn corrupt_amp_is_bounded_and_only_sometimes_set() {
        let fs = fates(&mut Corrupt::new(0.5, 0.01, 9), 1000);
        assert!(fs.iter().all(|f| f.deliver && f.corrupt_amp <= 0.01));
        let hit = fs.iter().filter(|f| f.corrupt_amp > 0.0).count();
        assert!(hit > 300 && hit < 700, "hits {hit}");
    }

    #[test]
    fn partition_drops_both_directions_inside_window_only() {
        let mut m = LinkPartition {
            a: 0,
            b: 1,
            from: SimTime::from_nanos(100),
            until: SimTime::from_nanos(200),
        };
        assert!(m.fate(&ctx(0, 1, 50)).deliver, "before window");
        assert!(!m.fate(&ctx(0, 1, 100)).deliver, "at window start");
        assert!(!m.fate(&ctx(1, 0, 150)).deliver, "reverse direction");
        assert!(m.fate(&ctx(0, 2, 150)).deliver, "other link untouched");
        assert!(m.fate(&ctx(0, 1, 200)).deliver, "window end is exclusive");
    }

    #[test]
    fn scripted_faults_hit_the_nth_message() {
        let mut m = ScriptedFaults::new(vec![(0, 1, 1, Fate::dropped())]);
        assert!(m.fate(&ctx(0, 1, 0)).deliver);
        assert!(!m.fate(&ctx(0, 1, 1)).deliver);
        assert!(m.fate(&ctx(0, 1, 2)).deliver);
    }

    #[test]
    fn plan_confines_faults_to_their_window() {
        let mut m = FaultPlan::new().window(
            SimTime::from_nanos(1000),
            SimTime::from_nanos(2000),
            Loss::new(1.0, 5),
        );
        assert!(m.fate(&ctx(0, 1, 999)).deliver);
        assert!(!m.fate(&ctx(0, 1, 1000)).deliver);
        assert!(m.fate(&ctx(0, 1, 2000)).deliver);
    }

    #[test]
    fn stack_merges_layers() {
        let mut m = FaultStack::new()
            .with(Duplicate::new(1.0, 1))
            .with(Duplicate::new(1.0, 2));
        let f = m.fate(&ctx(0, 1, 0));
        assert!(f.deliver);
        assert_eq!(f.extra_copies, 2);

        let mut m = FaultStack::new()
            .with(Loss::new(1.0, 1))
            .with(Duplicate::new(1.0, 2));
        assert!(!m.fate(&ctx(0, 1, 0)).deliver, "a drop beats duplication");
    }

    #[test]
    fn crash_plan_tracks_outages() {
        let plan = CrashPlan::new(vec![MachineCrash {
            rank: 2,
            at: SimTime::from_nanos(100),
            restart_after: SimDuration::from_nanos(50),
        }]);
        assert!(!plan.is_down(2, SimTime::from_nanos(99)));
        assert!(plan.is_down(2, SimTime::from_nanos(100)));
        assert!(plan.is_down(2, SimTime::from_nanos(149)));
        assert!(!plan.is_down(2, SimTime::from_nanos(150)));
        assert!(!plan.is_down(1, SimTime::from_nanos(120)));
        assert_eq!(plan.crashes_for(2).len(), 1);
        assert!(plan.crashes_for(0).is_empty());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn same_seed_same_fates(p in 0.0f64..1.0, seed in 0u64..1000, n in 1usize..200) {
            let mk = || {
                FaultStack::new()
                    .with(Loss::new(p, seed))
                    .with(Duplicate::new(p, seed.wrapping_add(1)))
            };
            let a: Vec<Fate> = {
                let mut m = mk();
                (0..n).map(|i| m.fate(&MsgCtx {
                    src: 0, dst: 1, bytes: 64, now: SimTime::from_nanos(i as u64)
                })).collect()
            };
            let b: Vec<Fate> = {
                let mut m = mk();
                (0..n).map(|i| m.fate(&MsgCtx {
                    src: 0, dst: 1, bytes: 64, now: SimTime::from_nanos(i as u64)
                })).collect()
            };
            prop_assert_eq!(a, b);
        }

        #[test]
        fn merge_is_commutative(da in 0u32..2, db in 0u32..2,
                                ca in 0u32..4, cb in 0u32..4) {
            let a = Fate { deliver: da == 1, extra_copies: ca, corrupt_amp: 0.0 };
            let b = Fate { deliver: db == 1, extra_copies: cb, corrupt_amp: 0.0 };
            prop_assert_eq!(a.merge(b), b.merge(a));
        }
    }
}
