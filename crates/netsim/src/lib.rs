//! # netsim — heterogeneous cluster and network models
//!
//! This crate models the *computing platform* of Govindan & Franklin's
//! speculative-computation study: a pool of workstations of unequal speeds
//! connected by a shared, noisy network. It layers on top of the [`desim`]
//! discrete-event kernel:
//!
//! * [`MachineSpec`] — a processor's capacity `M_i` (operations/second,
//!   Table 1 of the paper), converting operation counts to virtual time;
//! * [`ClusterSpec`] — a fastest-first machine pool with the paper's linear
//!   capacity ramp (`M_1 = 10 × M_16`) as a canned configuration;
//! * [`NetworkModel`] — per-message delivery delay: constant, per-link,
//!   shared-medium with contention, plus [`TransientDelays`], [`Jitter`] and
//!   [`ScriptedDelays`] decorators;
//! * [`LoadModel`] — background load on timeshared machines, scaling
//!   compute phases;
//! * [`FaultModel`] — per-message fates (loss, duplication, corruption,
//!   partitions, scripted fault plans) plus [`CrashPlan`] machine outages,
//!   composable alongside the latency models.
//!
//! All stochastic models take explicit seeds and are deterministic.
//!
//! A delay computed here is the *exact* virtual instant the message
//! becomes visible to its receiver: delivery is event-driven end to end
//! (the kernel wakes a blocked receiver at that instant or at its
//! deadline — there is no polling quantum anywhere between a
//! [`NetworkModel`]'s answer and the application observing the message).

#![warn(missing_docs)]

mod cluster;
mod fault;
mod load;
mod machine;
mod network;

pub use cluster::ClusterSpec;
pub use fault::{
    BoxedFaultModel, Corrupt, CrashPlan, Duplicate, Fate, FaultModel, FaultPlan, FaultStack,
    LinkPartition, Loss, MachineCrash, NoFaults, ScriptedFaults,
};
pub use load::{BoxedLoadModel, LoadModel, RandomSpikes, UniformNoise, Unloaded};
pub use machine::MachineSpec;
pub use network::{
    BoxedNetworkModel, ConstantLatency, Jitter, LinkBandwidth, LinkLatency, MsgCtx, NetworkModel,
    ScriptedDelays, SharedMedium, TransientDelays,
};

#[cfg(test)]
mod tests {
    use super::*;
    use desim::{SimDuration, SimTime};

    #[test]
    fn composed_model_stacks_decorators() {
        // Shared medium + scripted delay + jitter all compose.
        let base = SharedMedium::new(SimDuration::from_millis(1), 1e6);
        let scripted = ScriptedDelays::new(base, vec![(0, 1, 0, SimDuration::from_millis(7))]);
        let mut model = Jitter::new(scripted, 0.1, 42);
        let d = model.delay(&MsgCtx {
            src: 0,
            dst: 1,
            bytes: 1000,
            now: SimTime::ZERO,
        });
        // Base: 1ms tx + 1ms latency + 7ms script = 9ms, ±10%.
        let secs = d.as_secs_f64();
        assert!((0.0081..=0.0099).contains(&secs), "got {secs}");
    }

    #[test]
    fn cluster_machines_convert_ops_consistently() {
        let c = ClusterSpec::paper_model_example();
        // Fastest machine: 100 MIPS; 1e8 ops take 1 virtual second.
        assert_eq!(
            c.machines()[0].ops_duration(100_000_000).as_nanos(),
            1_000_000_000
        );
        // Slowest: 10 MIPS; same work takes 10 virtual seconds.
        assert_eq!(
            c.machines()[15].ops_duration(100_000_000).as_nanos(),
            10_000_000_000
        );
    }
}
