//! Cluster specifications: an ordered set of heterogeneous machines.
//!
//! Following §4 of the paper, machines are kept sorted by decreasing
//! capacity (`M_1 ≥ M_2 ≥ …`); a *p*-processor run uses the fastest `p`
//! machines. The paper's model example uses 16 machines whose speeds vary
//! linearly with a 10× ratio between fastest and slowest; its measured
//! testbed spans 120 MIPS (SparcStation 10/1) down to 10 MIPS (SUN 4/10).

use crate::machine::MachineSpec;

/// An ordered (fastest-first) collection of machines.
#[derive(Clone, Debug)]
pub struct ClusterSpec {
    machines: Vec<MachineSpec>,
}

impl ClusterSpec {
    /// Build from an explicit machine list; sorts fastest-first.
    pub fn new(mut machines: Vec<MachineSpec>) -> Self {
        assert!(!machines.is_empty(), "a cluster needs at least one machine");
        machines.sort_by(|a, b| b.mips.partial_cmp(&a.mips).expect("finite capacities"));
        ClusterSpec { machines }
    }

    /// `count` identical machines of `mips` capacity.
    pub fn homogeneous(count: usize, mips: f64) -> Self {
        assert!(count > 0);
        ClusterSpec {
            machines: vec![MachineSpec::new(mips); count],
        }
    }

    /// `count` machines whose capacities fall linearly from `fastest` to
    /// `slowest` — the shape of both the paper's model example
    /// (`M_1 = 10 × M_16`) and its measured workstation pool.
    pub fn linear_ramp(count: usize, fastest: f64, slowest: f64) -> Self {
        assert!(count > 0);
        assert!(
            fastest >= slowest && slowest > 0.0,
            "need fastest >= slowest > 0, got {fastest} and {slowest}"
        );
        let machines = (0..count)
            .map(|i| {
                let frac = if count == 1 {
                    0.0
                } else {
                    i as f64 / (count - 1) as f64
                };
                MachineSpec::new(fastest - frac * (fastest - slowest))
            })
            .collect();
        ClusterSpec { machines }
    }

    /// The 16-machine configuration of the paper's §4 model example:
    /// linear ramp with the fastest machine 10× the slowest.
    pub fn paper_model_example() -> Self {
        Self::linear_ramp(16, 100.0, 10.0)
    }

    /// A 16-machine configuration shaped like the paper's measured testbed:
    /// 120 MIPS down to 10 MIPS, linear.
    pub fn paper_testbed() -> Self {
        Self::linear_ramp(16, 120.0, 10.0)
    }

    /// Number of machines.
    pub fn len(&self) -> usize {
        self.machines.len()
    }

    /// True if the cluster is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.machines.is_empty()
    }

    /// The machines, fastest first.
    pub fn machines(&self) -> &[MachineSpec] {
        &self.machines
    }

    /// The fastest `p` machines (the set `{P1…Pp}` of §4).
    ///
    /// # Panics
    /// Panics if `p` is zero or exceeds the cluster size.
    pub fn fastest(&self, p: usize) -> ClusterSpec {
        assert!(p >= 1 && p <= self.machines.len(), "p={p} out of range");
        ClusterSpec {
            machines: self.machines[..p].to_vec(),
        }
    }

    /// Capacities `M_i` as raw numbers, fastest first.
    pub fn capacities(&self) -> Vec<f64> {
        self.machines.iter().map(|m| m.mips).collect()
    }

    /// Total capacity of the first `p` machines.
    pub fn total_capacity(&self, p: usize) -> f64 {
        assert!(p >= 1 && p <= self.machines.len());
        self.machines[..p].iter().map(|m| m.mips).sum()
    }

    /// `speedup_max(p) = Σ_{i≤p} M_i / M_1` (§4): the best speedup a
    /// *p*-machine run can achieve relative to the fastest machine alone.
    pub fn max_speedup(&self, p: usize) -> f64 {
        self.total_capacity(p) / self.machines[0].mips
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_sorts_fastest_first() {
        let c = ClusterSpec::new(vec![
            MachineSpec::new(10.0),
            MachineSpec::new(120.0),
            MachineSpec::new(50.0),
        ]);
        assert_eq!(c.capacities(), vec![120.0, 50.0, 10.0]);
    }

    #[test]
    fn linear_ramp_endpoints() {
        let c = ClusterSpec::linear_ramp(16, 100.0, 10.0);
        assert_eq!(c.len(), 16);
        assert_eq!(c.machines()[0].mips, 100.0);
        assert_eq!(c.machines()[15].mips, 10.0);
        // Paper's ratio: fastest is 10x the slowest.
        assert!((c.machines()[0].mips / c.machines()[15].mips - 10.0).abs() < 1e-12);
    }

    #[test]
    fn linear_ramp_is_monotone() {
        let c = ClusterSpec::linear_ramp(16, 100.0, 10.0);
        for w in c.machines().windows(2) {
            assert!(w[0].mips >= w[1].mips);
        }
    }

    #[test]
    fn single_machine_ramp() {
        let c = ClusterSpec::linear_ramp(1, 50.0, 10.0);
        assert_eq!(c.capacities(), vec![50.0]);
    }

    #[test]
    fn fastest_takes_prefix() {
        let c = ClusterSpec::paper_model_example();
        let sub = c.fastest(4);
        assert_eq!(sub.len(), 4);
        assert_eq!(sub.machines()[0].mips, c.machines()[0].mips);
    }

    #[test]
    fn max_speedup_single_machine_is_one() {
        let c = ClusterSpec::paper_model_example();
        assert!((c.max_speedup(1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn max_speedup_grows_sublinearly_on_heterogeneous_cluster() {
        let c = ClusterSpec::paper_model_example();
        let mut last = 0.0;
        for p in 1..=16 {
            let s = c.max_speedup(p);
            assert!(s > last, "max speedup must grow with p");
            assert!(s <= p as f64 + 1e-12, "cannot beat linear speedup");
            last = s;
        }
        // With a 10x linear ramp, sum of capacities = 16 * 55 / 100 = 8.8.
        assert!((c.max_speedup(16) - 8.8).abs() < 1e-9);
    }

    #[test]
    fn homogeneous_max_speedup_is_linear() {
        let c = ClusterSpec::homogeneous(8, 42.0);
        assert!((c.max_speedup(8) - 8.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn fastest_zero_rejected() {
        ClusterSpec::paper_model_example().fastest(0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// max_speedup is monotone nondecreasing in p and bounded by p, for
        /// any positive capacity vector.
        #[test]
        fn max_speedup_bounds(caps in proptest::collection::vec(1.0f64..1000.0, 1..32)) {
            let c = ClusterSpec::new(caps.iter().map(|&m| MachineSpec::new(m)).collect());
            let mut last = 0.0;
            for p in 1..=c.len() {
                let s = c.max_speedup(p);
                prop_assert!(s >= last - 1e-12);
                prop_assert!(s <= p as f64 + 1e-9);
                prop_assert!(s >= 1.0 - 1e-12);
                last = s;
            }
        }

        /// fastest(p) always returns the p largest capacities.
        #[test]
        fn fastest_is_prefix_of_sorted(caps in proptest::collection::vec(1.0f64..1000.0, 2..32), frac in 0.0f64..1.0) {
            let c = ClusterSpec::new(caps.iter().map(|&m| MachineSpec::new(m)).collect());
            let p = 1 + ((c.len() - 1) as f64 * frac) as usize;
            let sub = c.fastest(p);
            let mut sorted = caps.clone();
            sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
            prop_assert_eq!(sub.capacities(), sorted[..p].to_vec());
        }
    }
}
