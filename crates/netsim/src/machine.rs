//! Heterogeneous machine (processor) model.
//!
//! The paper's testbed is a network of SUN/Sparc workstations whose speeds
//! span 10–120 MIPS; a processor's capacity `M_i` is "the number of
//! operations performed per unit time" (§4, Table 1). [`MachineSpec`]
//! captures exactly that: a machine turns an operation count into virtual
//! compute time.

use desim::SimDuration;

/// Capacity of one simulated machine.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MachineSpec {
    /// Capacity `M_i` in millions of operations per second.
    pub mips: f64,
}

impl MachineSpec {
    /// A machine performing `mips` million operations per second.
    ///
    /// # Panics
    /// Panics if `mips` is not strictly positive and finite.
    pub fn new(mips: f64) -> Self {
        assert!(
            mips.is_finite() && mips > 0.0,
            "machine capacity must be positive, got {mips}"
        );
        MachineSpec { mips }
    }

    /// Operations per second (`M_i`).
    pub fn ops_per_sec(&self) -> f64 {
        self.mips * 1e6
    }

    /// Virtual time needed to execute `ops` operations on this machine.
    pub fn ops_duration(&self, ops: u64) -> SimDuration {
        SimDuration::from_secs_f64(ops as f64 / self.ops_per_sec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ops_duration_scales_inversely_with_speed() {
        let fast = MachineSpec::new(100.0);
        let slow = MachineSpec::new(10.0);
        let ops = 1_000_000;
        assert_eq!(fast.ops_duration(ops).as_nanos(), 10_000_000); // 10 ms
        assert_eq!(slow.ops_duration(ops).as_nanos(), 100_000_000); // 100 ms
    }

    #[test]
    fn zero_ops_take_zero_time() {
        assert_eq!(MachineSpec::new(50.0).ops_duration(0), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn rejects_zero_capacity() {
        MachineSpec::new(0.0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn rejects_nan_capacity() {
        MachineSpec::new(f64::NAN);
    }
}
