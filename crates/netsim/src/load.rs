//! Background-load models for timeshared machines.
//!
//! The paper notes that "the background load on timeshared processors may
//! slow down the computation phase" (§3.2) and blames part of its
//! model-vs-measured gap on it (§5). A [`LoadModel`] scales a machine's
//! compute durations by a time-varying factor ≥ 1.

use desim::SimTime;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A multiplicative slowdown applied to compute phases.
pub trait LoadModel: Send {
    /// Slowdown factor (≥ 1.0) for a compute phase starting at `now` on
    /// machine `rank`.
    fn factor(&mut self, rank: usize, now: SimTime) -> f64;
}

/// No background load: every compute phase runs at full machine speed.
#[derive(Clone, Copy, Debug, Default)]
pub struct Unloaded;

impl LoadModel for Unloaded {
    fn factor(&mut self, _rank: usize, _now: SimTime) -> f64 {
        1.0
    }
}

/// Occasional load spikes: with probability `prob` per compute phase the
/// machine runs `slowdown`× slower (another process got scheduled).
pub struct RandomSpikes {
    prob: f64,
    slowdown: f64,
    rng: SmallRng,
}

impl RandomSpikes {
    /// With probability `prob` per compute phase, apply `slowdown` (> 1).
    pub fn new(prob: f64, slowdown: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&prob), "probability must be in [0,1]");
        assert!(slowdown >= 1.0, "slowdown must be >= 1");
        RandomSpikes {
            prob,
            slowdown,
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl LoadModel for RandomSpikes {
    fn factor(&mut self, _rank: usize, _now: SimTime) -> f64 {
        if self.rng.gen_bool(self.prob) {
            self.slowdown
        } else {
            1.0
        }
    }
}

/// Continuous mild noise: each compute phase is scaled by a uniform factor
/// in `[1, 1+frac]`.
pub struct UniformNoise {
    frac: f64,
    rng: SmallRng,
}

impl UniformNoise {
    /// Scale compute phases by up to `1 + frac`.
    pub fn new(frac: f64, seed: u64) -> Self {
        assert!(frac >= 0.0, "noise fraction must be non-negative");
        UniformNoise {
            frac,
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl LoadModel for UniformNoise {
    fn factor(&mut self, _rank: usize, _now: SimTime) -> f64 {
        1.0 + self.frac * self.rng.gen::<f64>()
    }
}

/// Boxed model for runtime composition.
pub type BoxedLoadModel = Box<dyn LoadModel>;

impl LoadModel for BoxedLoadModel {
    fn factor(&mut self, rank: usize, now: SimTime) -> f64 {
        (**self).factor(rank, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unloaded_is_always_one() {
        let mut m = Unloaded;
        assert_eq!(m.factor(0, SimTime::ZERO), 1.0);
        assert_eq!(m.factor(5, SimTime::from_nanos(999)), 1.0);
    }

    #[test]
    fn spikes_respect_extremes() {
        let mut never = RandomSpikes::new(0.0, 4.0, 1);
        let mut always = RandomSpikes::new(1.0, 4.0, 1);
        for _ in 0..50 {
            assert_eq!(never.factor(0, SimTime::ZERO), 1.0);
            assert_eq!(always.factor(0, SimTime::ZERO), 4.0);
        }
    }

    #[test]
    fn spikes_deterministic_per_seed() {
        let run = |seed| {
            let mut m = RandomSpikes::new(0.5, 3.0, seed);
            (0..100)
                .map(|_| m.factor(0, SimTime::ZERO))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(11), run(11));
    }

    #[test]
    fn noise_within_bounds() {
        let mut m = UniformNoise::new(0.25, 9);
        for _ in 0..200 {
            let f = m.factor(0, SimTime::ZERO);
            assert!((1.0..=1.25).contains(&f));
        }
    }

    #[test]
    #[should_panic(expected = "slowdown must be >= 1")]
    fn spikes_reject_speedups() {
        RandomSpikes::new(0.5, 0.5, 1);
    }
}
