//! Network latency models.
//!
//! The paper's messages cross a shared 10 Mb/s Ethernet whose delays are
//! "large and often subject to large variations due to non-deterministic
//! network traffic" (§1). A [`NetworkModel`] decides, at send time, how long
//! a message takes to reach its destination mailbox. Models are stateful
//! (e.g. a shared medium remembers when it frees up) and composable
//! (jitter/transient wrappers decorate a base model).

use desim::{SimDuration, SimTime};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Everything a latency model may condition on.
#[derive(Clone, Copy, Debug)]
pub struct MsgCtx {
    /// Sending rank.
    pub src: usize,
    /// Receiving rank.
    pub dst: usize,
    /// Message size on the wire, in bytes.
    pub bytes: usize,
    /// Virtual time at which the send happens.
    pub now: SimTime,
}

/// A model mapping each message to its end-to-end delivery delay.
pub trait NetworkModel: Send {
    /// Delay between the send instant and delivery into the destination
    /// mailbox. Called exactly once per message, in deterministic order.
    fn delay(&mut self, ctx: &MsgCtx) -> SimDuration;
}

/// Fixed delay for every message, regardless of size or load.
#[derive(Clone, Copy, Debug)]
pub struct ConstantLatency(pub SimDuration);

impl NetworkModel for ConstantLatency {
    fn delay(&mut self, _ctx: &MsgCtx) -> SimDuration {
        self.0
    }
}

/// Point-to-point link: per-message latency plus size-proportional
/// transmission time, with no cross-message contention.
#[derive(Clone, Copy, Debug)]
pub struct LinkLatency {
    /// Propagation + protocol-stack latency per message.
    pub latency: SimDuration,
    /// Link bandwidth in bytes per second.
    pub bytes_per_sec: f64,
}

impl LinkLatency {
    /// Transmission time of `bytes` on this link.
    pub fn tx_time(&self, bytes: usize) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 / self.bytes_per_sec)
    }
}

impl NetworkModel for LinkLatency {
    fn delay(&mut self, ctx: &MsgCtx) -> SimDuration {
        self.latency + self.tx_time(ctx.bytes)
    }
}

/// Switched network: every directed `(src, dst)` pair is its own full-duplex
/// link with the given bandwidth, so messages on the *same* link queue
/// behind each other while different links transmit in parallel.
///
/// This sits between [`LinkLatency`] (size-proportional delay, but infinite
/// capacity — two back-to-back sends never contend) and [`SharedMedium`]
/// (every message in the cluster fights for one bus). It is the model that
/// makes the delta exchange's bytes-on-the-wire a first-class cost: a rank
/// that broadcasts a full partition to `p-1` peers pays each link's
/// serialization once, and shrinking the frames shrinks the occupancy of
/// every link it feeds.
#[derive(Debug)]
pub struct LinkBandwidth {
    /// Propagation + protocol-stack latency per message.
    pub latency: SimDuration,
    /// Per-link bandwidth in bytes per second.
    pub bytes_per_sec: f64,
    busy_until: std::collections::HashMap<(usize, usize), SimTime>,
}

impl LinkBandwidth {
    /// A quiet switched network with the given per-message latency and
    /// per-link bandwidth.
    pub fn new(latency: SimDuration, bytes_per_sec: f64) -> Self {
        assert!(bytes_per_sec > 0.0, "bandwidth must be positive");
        LinkBandwidth {
            latency,
            bytes_per_sec,
            busy_until: std::collections::HashMap::new(),
        }
    }

    /// When the `(src, dst)` link next becomes idle (for tests/diagnostics).
    /// A link that has never carried a message is idle at time zero.
    pub fn link_busy_until(&self, src: usize, dst: usize) -> SimTime {
        self.busy_until
            .get(&(src, dst))
            .copied()
            .unwrap_or(SimTime::ZERO)
    }
}

impl NetworkModel for LinkBandwidth {
    fn delay(&mut self, ctx: &MsgCtx) -> SimDuration {
        let tx = SimDuration::from_secs_f64(ctx.bytes as f64 / self.bytes_per_sec);
        let busy = self
            .busy_until
            .entry((ctx.src, ctx.dst))
            .or_insert(SimTime::ZERO);
        let start = (*busy).max(ctx.now);
        let done = start + tx;
        *busy = done;
        done.duration_since(ctx.now) + self.latency
    }
}

/// Shared-medium (Ethernet-like) network: all messages serialize through one
/// bus. A message must wait for the bus to free up, then occupies it for its
/// transmission time, then takes a further fixed latency to be absorbed by
/// the receiver.
///
/// This is the model that makes total communication time grow with the
/// number of processors (each iteration moves `p·(p-1)` messages over the
/// same wire) — the effect behind both the paper's `t_comm(p)` growth
/// assumption and the post-10-processor slowdown in its Figure 5.
#[derive(Debug)]
pub struct SharedMedium {
    /// Receiver-side fixed latency per message.
    pub latency: SimDuration,
    /// Bus bandwidth in bytes per second.
    pub bytes_per_sec: f64,
    busy_until: SimTime,
}

impl SharedMedium {
    /// A quiet shared medium with the given per-message latency and bus
    /// bandwidth.
    pub fn new(latency: SimDuration, bytes_per_sec: f64) -> Self {
        assert!(bytes_per_sec > 0.0, "bandwidth must be positive");
        SharedMedium {
            latency,
            bytes_per_sec,
            busy_until: SimTime::ZERO,
        }
    }

    /// When the bus next becomes idle (for tests/diagnostics).
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }
}

impl NetworkModel for SharedMedium {
    fn delay(&mut self, ctx: &MsgCtx) -> SimDuration {
        let tx = SimDuration::from_secs_f64(ctx.bytes as f64 / self.bytes_per_sec);
        let start = self.busy_until.max(ctx.now);
        let done = start + tx;
        self.busy_until = done;
        done.duration_since(ctx.now) + self.latency
    }
}

/// Decorator adding rare, large, transient delays: with probability `prob`
/// per message, `extra` is added — the paper's "messages may occasionally
/// experience excessive delays due to network traffic" (§3.2).
pub struct TransientDelays<M> {
    inner: M,
    prob: f64,
    extra: SimDuration,
    rng: SmallRng,
}

impl<M: NetworkModel> TransientDelays<M> {
    /// Wrap `inner`, adding `extra` delay with probability `prob` per
    /// message, using a deterministic stream seeded by `seed`.
    pub fn new(inner: M, prob: f64, extra: SimDuration, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&prob), "probability must be in [0,1]");
        TransientDelays {
            inner,
            prob,
            extra,
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl<M: NetworkModel> NetworkModel for TransientDelays<M> {
    fn delay(&mut self, ctx: &MsgCtx) -> SimDuration {
        let base = self.inner.delay(ctx);
        if self.rng.gen_bool(self.prob) {
            base + self.extra
        } else {
            base
        }
    }
}

/// Decorator multiplying each delay by a uniform factor in
/// `[1-frac, 1+frac]`, modelling everyday network noise.
pub struct Jitter<M> {
    inner: M,
    frac: f64,
    rng: SmallRng,
}

impl<M: NetworkModel> Jitter<M> {
    /// Wrap `inner` with ±`frac` relative jitter (e.g. `0.2` for ±20%).
    pub fn new(inner: M, frac: f64, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&frac),
            "jitter fraction must be in [0,1)"
        );
        Jitter {
            inner,
            frac,
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl<M: NetworkModel> NetworkModel for Jitter<M> {
    fn delay(&mut self, ctx: &MsgCtx) -> SimDuration {
        let base = self.inner.delay(ctx);
        let factor = 1.0 + self.frac * (self.rng.gen::<f64>() * 2.0 - 1.0);
        base.mul_f64(factor)
    }
}

/// Decorator injecting scripted delays for specific messages, identified by
/// `(src, dst, occurrence)` — the n-th message from `src` to `dst` (0-based)
/// gets `extra` added. Used to reproduce the paper's Figure 4, where "the
/// first message from P1 to P2 is delayed in transit".
pub struct ScriptedDelays<M> {
    inner: M,
    script: Vec<(usize, usize, u64, SimDuration)>,
    counts: std::collections::HashMap<(usize, usize), u64>,
}

impl<M: NetworkModel> ScriptedDelays<M> {
    /// Wrap `inner` with a list of `(src, dst, nth, extra)` injections.
    pub fn new(inner: M, script: Vec<(usize, usize, u64, SimDuration)>) -> Self {
        ScriptedDelays {
            inner,
            script,
            counts: std::collections::HashMap::new(),
        }
    }
}

impl<M: NetworkModel> NetworkModel for ScriptedDelays<M> {
    fn delay(&mut self, ctx: &MsgCtx) -> SimDuration {
        let n = self.counts.entry((ctx.src, ctx.dst)).or_insert(0);
        let occurrence = *n;
        *n += 1;
        let mut d = self.inner.delay(ctx);
        for (src, dst, nth, extra) in &self.script {
            if *src == ctx.src && *dst == ctx.dst && *nth == occurrence {
                d += *extra;
            }
        }
        d
    }
}

/// Boxed model for heterogeneous composition at runtime.
pub type BoxedNetworkModel = Box<dyn NetworkModel>;

impl NetworkModel for BoxedNetworkModel {
    fn delay(&mut self, ctx: &MsgCtx) -> SimDuration {
        (**self).delay(ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(bytes: usize, now_ns: u64) -> MsgCtx {
        MsgCtx {
            src: 0,
            dst: 1,
            bytes,
            now: SimTime::from_nanos(now_ns),
        }
    }

    #[test]
    fn constant_latency_ignores_everything() {
        let mut m = ConstantLatency(SimDuration::from_millis(3));
        assert_eq!(m.delay(&ctx(10, 0)), SimDuration::from_millis(3));
        assert_eq!(m.delay(&ctx(1_000_000, 99)), SimDuration::from_millis(3));
    }

    #[test]
    fn link_latency_adds_tx_time() {
        // 1 MB/s, 1000 bytes => 1 ms of transmission.
        let mut m = LinkLatency {
            latency: SimDuration::from_millis(2),
            bytes_per_sec: 1e6,
        };
        assert_eq!(m.delay(&ctx(1000, 0)), SimDuration::from_millis(3));
    }

    #[test]
    fn link_bandwidth_serializes_per_link_only() {
        // 1 MB/s links, zero latency. Two 1000-byte messages on the same
        // link queue (1ms then 2ms); a message on a different link at the
        // same instant does not (1ms).
        let mut m = LinkBandwidth::new(SimDuration::ZERO, 1e6);
        assert_eq!(m.delay(&ctx(1000, 0)), SimDuration::from_millis(1));
        assert_eq!(m.delay(&ctx(1000, 0)), SimDuration::from_millis(2));
        let other = MsgCtx {
            src: 0,
            dst: 2,
            bytes: 1000,
            now: SimTime::ZERO,
        };
        assert_eq!(m.delay(&other), SimDuration::from_millis(1));
        assert_eq!(m.link_busy_until(0, 1), SimTime::from_nanos(2_000_000));
        assert_eq!(m.link_busy_until(0, 2), SimTime::from_nanos(1_000_000));
        assert_eq!(m.link_busy_until(2, 0), SimTime::ZERO);
    }

    #[test]
    fn link_bandwidth_idles_between_spaced_sends_and_adds_latency() {
        let mut m = LinkBandwidth::new(SimDuration::from_millis(5), 1e6);
        assert_eq!(m.delay(&ctx(1000, 0)), SimDuration::from_millis(6));
        // Next send well after the link freed: no queueing.
        assert_eq!(m.delay(&ctx(1000, 10_000_000)), SimDuration::from_millis(6));
    }

    #[test]
    fn shared_medium_serializes_back_to_back_sends() {
        // 1 MB/s bus, zero latency. Two 1000-byte messages at t=0:
        // first finishes at 1ms (delay 1ms), second waits and finishes at
        // 2ms (delay 2ms).
        let mut m = SharedMedium::new(SimDuration::ZERO, 1e6);
        assert_eq!(m.delay(&ctx(1000, 0)), SimDuration::from_millis(1));
        assert_eq!(m.delay(&ctx(1000, 0)), SimDuration::from_millis(2));
    }

    #[test]
    fn shared_medium_idles_between_spaced_sends() {
        let mut m = SharedMedium::new(SimDuration::ZERO, 1e6);
        assert_eq!(m.delay(&ctx(1000, 0)), SimDuration::from_millis(1));
        // Next send well after the bus freed: no queueing.
        assert_eq!(m.delay(&ctx(1000, 10_000_000)), SimDuration::from_millis(1));
    }

    #[test]
    fn shared_medium_adds_receiver_latency() {
        let mut m = SharedMedium::new(SimDuration::from_millis(5), 1e6);
        assert_eq!(m.delay(&ctx(1000, 0)), SimDuration::from_millis(6));
    }

    #[test]
    fn transient_delays_fire_with_prob_one() {
        let base = ConstantLatency(SimDuration::from_millis(1));
        let mut m = TransientDelays::new(base, 1.0, SimDuration::from_millis(50), 1);
        assert_eq!(m.delay(&ctx(1, 0)), SimDuration::from_millis(51));
    }

    #[test]
    fn transient_delays_never_fire_with_prob_zero() {
        let base = ConstantLatency(SimDuration::from_millis(1));
        let mut m = TransientDelays::new(base, 0.0, SimDuration::from_millis(50), 1);
        for _ in 0..100 {
            assert_eq!(m.delay(&ctx(1, 0)), SimDuration::from_millis(1));
        }
    }

    #[test]
    fn transient_delays_are_deterministic_per_seed() {
        let run = |seed| {
            let base = ConstantLatency(SimDuration::from_millis(1));
            let mut m = TransientDelays::new(base, 0.3, SimDuration::from_millis(10), seed);
            (0..50)
                .map(|_| m.delay(&ctx(1, 0)).as_nanos())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn jitter_stays_within_bounds() {
        let base = ConstantLatency(SimDuration::from_millis(10));
        let mut m = Jitter::new(base, 0.2, 3);
        for _ in 0..200 {
            let d = m.delay(&ctx(1, 0)).as_secs_f64();
            assert!(
                (0.008..=0.012).contains(&d),
                "jittered delay {d} out of ±20%"
            );
        }
    }

    #[test]
    fn scripted_delay_hits_exactly_the_nth_message() {
        let base = ConstantLatency(SimDuration::from_millis(1));
        let mut m = ScriptedDelays::new(base, vec![(0, 1, 2, SimDuration::from_millis(100))]);
        assert_eq!(m.delay(&ctx(1, 0)), SimDuration::from_millis(1)); // 0th
        assert_eq!(m.delay(&ctx(1, 0)), SimDuration::from_millis(1)); // 1st
        assert_eq!(m.delay(&ctx(1, 0)), SimDuration::from_millis(101)); // 2nd
        assert_eq!(m.delay(&ctx(1, 0)), SimDuration::from_millis(1)); // 3rd
    }

    #[test]
    fn boxed_model_dispatches() {
        let mut m: BoxedNetworkModel = Box::new(ConstantLatency(SimDuration::from_millis(2)));
        assert_eq!(m.delay(&ctx(1, 0)), SimDuration::from_millis(2));
    }

    #[test]
    fn scripted_delay_distinguishes_pairs() {
        let base = ConstantLatency(SimDuration::from_millis(1));
        let mut m = ScriptedDelays::new(base, vec![(0, 1, 0, SimDuration::from_millis(100))]);
        let other = MsgCtx {
            src: 1,
            dst: 0,
            bytes: 1,
            now: SimTime::ZERO,
        };
        assert_eq!(m.delay(&other), SimDuration::from_millis(1)); // wrong pair
        assert_eq!(m.delay(&ctx(1, 0)), SimDuration::from_millis(101)); // right pair, 0th
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The shared medium conserves work: total delay over a burst of
        /// messages sent at the same instant equals serialized transmission
        /// (the i-th message waits for all earlier ones), and its busy
        /// horizon never moves backwards.
        #[test]
        fn shared_medium_serializes(
            sizes in proptest::collection::vec(1usize..10_000, 1..30),
            bw in 1e4f64..1e8,
        ) {
            let mut m = SharedMedium::new(SimDuration::ZERO, bw);
            let mut expected_done = 0.0f64;
            let mut last_busy = SimTime::ZERO;
            for (i, &bytes) in sizes.iter().enumerate() {
                let d = m.delay(&MsgCtx { src: 0, dst: 1, bytes, now: SimTime::ZERO });
                expected_done += bytes as f64 / bw;
                let got = d.as_secs_f64();
                // Each delay is quantized to whole nanoseconds, and the
                // rounding accumulates in busy_until: allow 1 ns/message.
                prop_assert!(
                    (got - expected_done).abs() <= 1e-6 * expected_done + 1e-9 * (i as f64 + 1.0),
                    "message {i}: got {got}, expected {expected_done}"
                );
                prop_assert!(m.busy_until() >= last_busy);
                last_busy = m.busy_until();
            }
        }

        /// Jitter never distorts a delay by more than the configured
        /// fraction, for any base delay.
        #[test]
        fn jitter_is_bounded(
            base_us in 1u64..1_000_000,
            frac in 0.0f64..0.99,
            seed in any::<u64>(),
        ) {
            let mut m = Jitter::new(
                ConstantLatency(SimDuration::from_micros(base_us)),
                frac,
                seed,
            );
            let base = base_us as f64 * 1e-6;
            for _ in 0..20 {
                let d = m
                    .delay(&MsgCtx { src: 0, dst: 1, bytes: 1, now: SimTime::ZERO })
                    .as_secs_f64();
                prop_assert!(d >= base * (1.0 - frac) - 1e-9);
                prop_assert!(d <= base * (1.0 + frac) + 1e-9);
            }
        }
    }
}
