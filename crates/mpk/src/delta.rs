//! Delta frames: sparse, quantization-floored partition updates.
//!
//! A sender that knows what a receiver already holds (its *shadow* of the
//! receiver's view) need not retransmit the whole partition every
//! iteration — only the entries that moved. A [`DeltaFrame`] is the sparse
//! encoding of that difference: `(index, new_value)` pairs over the
//! partition flattened to scalar lanes. Entries carry **absolute** new
//! values, not increments, so a duplicated frame re-applies idempotently
//! and a later full-state keyframe supersedes any number of lost frames.
//!
//! The *quantization floor* trades bandwidth for bounded error: an entry is
//! suppressed while `|current − shadow| ≤ floor`, so the receiver's copy of
//! any lane never strays more than `floor` from the sender's truth. Because
//! the diff is always taken against the shadow (what the receiver actually
//! holds), suppression error never accumulates across iterations. A floor
//! of exactly `0.0` compares *bit patterns* instead, making the delta
//! stream lossless: it reproduces the full broadcast bit-for-bit, including
//! `-0.0`/`NaN` transitions an epsilon test would miss.

use crate::codec::WireCodec;
use crate::types::WireSize;

/// A sparse partition update: absolute new values for the scalar lanes
/// that changed past the quantization floor.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DeltaFrame {
    /// `(lane index, new value)` pairs, ascending by index.
    pub entries: Vec<(u32, f64)>,
}

impl DeltaFrame {
    /// An empty frame (nothing moved past the floor).
    pub fn new() -> Self {
        DeltaFrame::default()
    }

    /// Number of entries carried.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no lane moved past the floor.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Diff `current` against `baseline` into this frame (clearing any
    /// previous contents), keeping entries whose change exceeds `floor`.
    ///
    /// With `floor == 0.0` the comparison is on bit patterns, so the frame
    /// captures *every* representational change (`-0.0`, `NaN` payloads)
    /// and replaying it reconstructs `current` exactly. Both slices must
    /// have the same length — the partition layout is fixed for a run.
    pub fn diff_into(&mut self, current: &[f64], baseline: &[f64], floor: f64) {
        assert_eq!(
            current.len(),
            baseline.len(),
            "delta diff requires a fixed lane layout"
        );
        self.entries.clear();
        if floor == 0.0 {
            for (i, (c, b)) in current.iter().zip(baseline).enumerate() {
                if c.to_bits() != b.to_bits() {
                    self.entries.push((i as u32, *c));
                }
            }
        } else {
            for (i, (c, b)) in current.iter().zip(baseline).enumerate() {
                if (c - b).abs() > floor {
                    self.entries.push((i as u32, *c));
                }
            }
        }
    }

    /// Convenience wrapper allocating a fresh frame.
    pub fn diff(current: &[f64], baseline: &[f64], floor: f64) -> Self {
        let mut f = DeltaFrame::new();
        f.diff_into(current, baseline, floor);
        f
    }

    /// Apply this frame to `target` in place. Idempotent: entries are
    /// absolute values, so applying twice is the same as applying once.
    pub fn apply(&self, target: &mut [f64]) {
        for &(i, v) in &self.entries {
            target[i as usize] = v;
        }
    }
}

impl WireSize for DeltaFrame {
    fn wire_size(&self) -> usize {
        self.entries.wire_size()
    }
}

impl WireCodec for DeltaFrame {
    fn encode(&self, out: &mut Vec<u8>) {
        self.entries.encode(out);
    }

    fn decode(buf: &mut &[u8]) -> Option<Self> {
        Some(DeltaFrame {
            entries: Vec::<(u32, f64)>::decode(buf)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{decode_exact, encode_to_vec, encoded_len_matches_wire_size};

    #[test]
    fn zero_floor_diff_reconstructs_bit_exactly() {
        let base = vec![1.0, -0.0, 2.5, f64::NAN, 4.0];
        let mut cur = base.clone();
        cur[1] = 0.0; // -0.0 -> +0.0: equal under ==, different bits
        cur[2] = 2.5000001;
        cur[3] = 7.0;
        let frame = DeltaFrame::diff(&cur, &base, 0.0);
        assert_eq!(frame.len(), 3);
        let mut rebuilt = base.clone();
        frame.apply(&mut rebuilt);
        let bits = |xs: &[f64]| xs.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&rebuilt), bits(&cur));
    }

    #[test]
    fn floor_suppresses_small_changes_and_bounds_error() {
        let base = vec![1.0; 8];
        let cur: Vec<f64> = (0..8).map(|i| 1.0 + i as f64 * 0.01).collect();
        let frame = DeltaFrame::diff(&cur, &base, 0.035);
        // Lanes 0..=3 moved by ≤ 0.03 → suppressed; 4..=7 exceed the floor.
        assert_eq!(
            frame.entries.iter().map(|e| e.0).collect::<Vec<_>>(),
            vec![4, 5, 6, 7]
        );
        let mut rebuilt = base.clone();
        frame.apply(&mut rebuilt);
        for (r, c) in rebuilt.iter().zip(&cur) {
            assert!((r - c).abs() <= 0.035, "suppression error above the floor");
        }
    }

    #[test]
    fn identical_states_produce_an_empty_frame() {
        let xs = vec![1.0, 2.0, 3.0];
        assert!(DeltaFrame::diff(&xs, &xs, 0.0).is_empty());
        assert!(DeltaFrame::diff(&xs, &xs, 0.5).is_empty());
    }

    #[test]
    fn apply_is_idempotent() {
        let base = vec![0.0; 4];
        let cur = vec![1.0, 0.0, 3.0, 0.0];
        let frame = DeltaFrame::diff(&cur, &base, 0.0);
        let mut once = base.clone();
        frame.apply(&mut once);
        let mut twice = once.clone();
        frame.apply(&mut twice);
        assert_eq!(once, twice);
    }

    #[test]
    fn codec_roundtrip_and_size_model_agree() {
        let frame = DeltaFrame {
            entries: vec![(0, 1.5), (7, -2.25), (1000, f64::MIN_POSITIVE)],
        };
        assert!(encoded_len_matches_wire_size(&frame));
        let bytes = encode_to_vec(&frame);
        assert_eq!(bytes.len(), 8 + 3 * 12);
        let back: DeltaFrame = decode_exact(&bytes).unwrap();
        assert_eq!(back, frame);
    }

    #[test]
    fn diff_into_reuses_the_allocation() {
        let mut frame = DeltaFrame::new();
        frame.diff_into(&[1.0, 2.0], &[0.0, 2.0], 0.0);
        assert_eq!(frame.entries, vec![(0, 1.0)]);
        frame.diff_into(&[1.0, 2.0], &[1.0, 2.0], 0.0);
        assert!(frame.is_empty());
    }
}
