//! Common message-passing vocabulary: ranks, tags, envelopes, wire sizes.

/// A process's index within a parallel run (0-based, like an MPI rank or a
/// PVM task position).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Rank(pub usize);

impl std::fmt::Display for Rank {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "P{}", self.0 + 1) // paper numbers processors from P1
    }
}

/// An application-chosen message tag (protocol channel).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Tag(pub u32);

/// A received message together with its provenance.
#[derive(Clone, Debug, PartialEq)]
pub struct Envelope<M> {
    /// Sending rank.
    pub src: Rank,
    /// Application tag.
    pub tag: Tag,
    /// The payload.
    pub msg: M,
}

/// Size of a value when serialized onto the wire, used by latency models.
///
/// Implementations should approximate the size a reasonable binary codec
/// would produce; exactness is unnecessary (the network model only needs the
/// right order of magnitude and proportionality).
pub trait WireSize {
    /// Approximate serialized size in bytes, excluding transport headers.
    fn wire_size(&self) -> usize;
}

/// Per-message fixed header overhead charged by transports, roughly a UDP
/// packet header plus PVM-style task routing.
pub const HEADER_BYTES: usize = 64;

/// Per-rank tallies of what the fault layer did to this rank's *sends*.
///
/// Zero everywhere when no fault layer is installed. `delivered` counts
/// messages that reached the destination mailbox at least once; `dropped`
/// counts messages no copy of which arrived (loss, partition, or a crashed
/// destination); `duplicated` counts extra copies beyond the original.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Sends that reached the destination mailbox.
    pub delivered: u64,
    /// Sends the fault layer swallowed entirely.
    pub dropped: u64,
    /// Extra copies injected beyond the originals.
    pub duplicated: u64,
}

impl WireSize for () {
    fn wire_size(&self) -> usize {
        0
    }
}

macro_rules! primitive_wire_size {
    ($($t:ty),*) => {
        $(impl WireSize for $t {
            fn wire_size(&self) -> usize {
                std::mem::size_of::<$t>()
            }
        })*
    };
}
primitive_wire_size!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64, bool);

impl<T: WireSize> WireSize for Vec<T> {
    fn wire_size(&self) -> usize {
        8 + self.iter().map(|x| x.wire_size()).sum::<usize>()
    }
}

impl<T: WireSize, const N: usize> WireSize for [T; N] {
    fn wire_size(&self) -> usize {
        self.iter().map(|x| x.wire_size()).sum()
    }
}

impl<A: WireSize, B: WireSize> WireSize for (A, B) {
    fn wire_size(&self) -> usize {
        self.0.wire_size() + self.1.wire_size()
    }
}

impl<A: WireSize, B: WireSize, C: WireSize> WireSize for (A, B, C) {
    fn wire_size(&self) -> usize {
        self.0.wire_size() + self.1.wire_size() + self.2.wire_size()
    }
}

impl WireSize for String {
    fn wire_size(&self) -> usize {
        8 + self.len()
    }
}

/// An `Arc` serializes as its payload: sharing is a process-local
/// optimisation (apps hand out cheap clones of one snapshot), invisible
/// on the wire.
impl<T: WireSize + ?Sized> WireSize for std::sync::Arc<T> {
    fn wire_size(&self) -> usize {
        (**self).wire_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_displays_one_based() {
        assert_eq!(Rank(0).to_string(), "P1");
        assert_eq!(Rank(15).to_string(), "P16");
    }

    #[test]
    fn primitive_sizes() {
        assert_eq!(3.5f64.wire_size(), 8);
        assert_eq!(7u32.wire_size(), 4);
        assert_eq!(true.wire_size(), 1);
    }

    #[test]
    fn vec_size_includes_length_prefix() {
        let v = vec![1.0f64; 10];
        assert_eq!(v.wire_size(), 8 + 80);
    }

    #[test]
    fn tuple_and_array_sizes_compose() {
        assert_eq!((1u64, 2.0f64).wire_size(), 16);
        assert_eq!([0f32; 4].wire_size(), 16);
        assert_eq!((1u8, 2u8, 3u32).wire_size(), 6);
    }

    #[test]
    fn string_size() {
        assert_eq!("abc".to_string().wire_size(), 11);
    }

    #[test]
    fn arc_is_transparent_on_the_wire() {
        let v = vec![1.0f64; 10];
        assert_eq!(std::sync::Arc::new(v.clone()).wire_size(), v.wire_size());
    }
}
