//! Real-thread transport backend: ranks are OS threads exchanging messages
//! through in-process mailboxes with optionally injected latency.
//!
//! This is the "channel-based port" of the paper's PVM setting: it runs the
//! same algorithms as the virtual-time backend on real concurrency. It is
//! useful for demos and cross-backend agreement tests; quantitative
//! experiments use [`run_sim_cluster`](crate::run_sim_cluster) instead,
//! because wall-clock timing on a shared host is noisy.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use desim::{SimDuration, SimTime};
use netsim::{FaultModel, MsgCtx};
use obs::{Mark, Recorder};
use parking_lot::{Condvar, Mutex};

use crate::sim::FaultSpec;
use crate::transport::Transport;
use crate::types::{Envelope, FaultCounters, Rank, Tag, WireSize, HEADER_BYTES};

/// Configuration of a thread-backed cluster.
#[derive(Clone, Debug)]
pub struct ThreadClusterOptions {
    /// Injected fixed latency per message.
    pub latency: Duration,
    /// Injected additional latency per payload byte.
    pub per_byte: Duration,
    /// Nominal speed for [`Transport::compute`], in million ops per second.
    /// `compute(ops)` sleeps `ops / (mips · 1e6)` seconds.
    pub mips: f64,
}

impl Default for ThreadClusterOptions {
    fn default() -> Self {
        ThreadClusterOptions {
            latency: Duration::ZERO,
            per_byte: Duration::ZERO,
            mips: 1000.0,
        }
    }
}

struct Timed<M> {
    visible_at: Instant,
    seq: u64,
    env: Envelope<M>,
}

impl<M> PartialEq for Timed<M> {
    fn eq(&self, other: &Self) -> bool {
        self.visible_at == other.visible_at && self.seq == other.seq
    }
}
impl<M> Eq for Timed<M> {}
impl<M> PartialOrd for Timed<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Timed<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest first.
        (other.visible_at, other.seq).cmp(&(self.visible_at, self.seq))
    }
}

struct MailboxState<M> {
    heap: BinaryHeap<Timed<M>>,
    seq: u64,
}

/// Priority mailbox shared by the in-process transports: the thread
/// backend delivers into it directly, the socket backend
/// ([`crate::SocketTransport`]) from its per-peer reader threads. Either
/// way the condvar wait discipline (and its zero-spin property) is this
/// one implementation.
pub(crate) struct ThreadMailbox<M> {
    state: Mutex<MailboxState<M>>,
    cv: Condvar,
    /// Number of condvar blocks performed by timed receives. A wait on an
    /// empty mailbox that runs to its deadline is exactly one block —
    /// there is no polling quantum to re-wake on.
    pub(crate) timed_waits: AtomicU64,
}

impl<M> ThreadMailbox<M> {
    pub(crate) fn new() -> Self {
        ThreadMailbox {
            state: Mutex::new(MailboxState {
                heap: BinaryHeap::new(),
                seq: 0,
            }),
            cv: Condvar::new(),
            timed_waits: AtomicU64::new(0),
        }
    }

    pub(crate) fn push(&self, visible_at: Instant, env: Envelope<M>) {
        let mut st = self.state.lock();
        let seq = st.seq;
        st.seq += 1;
        st.heap.push(Timed {
            visible_at,
            seq,
            env,
        });
        self.cv.notify_all();
    }

    pub(crate) fn try_pop(&self) -> Option<Envelope<M>> {
        let mut st = self.state.lock();
        match st.heap.peek() {
            Some(t) if t.visible_at <= Instant::now() => Some(st.heap.pop().unwrap().env),
            _ => None,
        }
    }

    pub(crate) fn pop_blocking(&self) -> Envelope<M> {
        let mut st = self.state.lock();
        loop {
            let now = Instant::now();
            match st.heap.peek() {
                Some(t) if t.visible_at <= now => return st.heap.pop().unwrap().env,
                Some(t) => {
                    let wake = t.visible_at;
                    let _ = self.cv.wait_until(&mut st, wake);
                }
                None => self.cv.wait(&mut st),
            }
        }
    }

    pub(crate) fn pop_deadline(&self, deadline: Instant) -> Option<Envelope<M>> {
        let mut st = self.state.lock();
        loop {
            let now = Instant::now();
            if let Some(t) = st.heap.peek() {
                if t.visible_at <= now {
                    return Some(st.heap.pop().unwrap().env);
                }
            }
            if now >= deadline {
                return None;
            }
            // Sleep until the next definite event: the earliest in-flight
            // message becoming visible, or the absolute deadline. A push
            // notifies the condvar, re-evaluating the bound, so there is
            // no polling quantum anywhere in the wait.
            let wake = match st.heap.peek() {
                Some(t) => t.visible_at.min(deadline),
                None => deadline,
            };
            self.timed_waits.fetch_add(1, AtomicOrdering::Relaxed);
            let _ = self.cv.wait_until(&mut st, wake);
        }
    }
}

/// Shared fault state of a thread-backed cluster: one fault spec consulted
/// under a lock (send order between threads is scheduler-dependent, so
/// thread-backend faults are *not* reproducible across runs — use the sim
/// backend for quantitative fault experiments) plus per-rank counters.
struct ThreadFaults<M> {
    spec: Mutex<FaultSpec<M>>,
    counters: Mutex<Vec<FaultCounters>>,
    /// Deterministic per-hit counter handed to corruptors.
    salt: AtomicU64,
}

/// A rank's endpoint on a thread-backed cluster.
pub struct ThreadTransport<M> {
    rank: Rank,
    size: usize,
    opts: ThreadClusterOptions,
    mailboxes: Arc<Vec<ThreadMailbox<M>>>,
    epoch: Instant,
    rec: Option<Box<dyn Recorder>>,
    faults: Option<Arc<ThreadFaults<M>>>,
}

impl<M> ThreadTransport<M> {
    /// Attach a structured telemetry sink for this rank (typically an
    /// [`obs::SharedRecorder`] clone, drained after
    /// [`run_thread_cluster`] returns). Timestamps are wall-clock
    /// nanoseconds since cluster start, so they are *not* reproducible
    /// across runs — counters and marks are, spans durations are not.
    pub fn set_recorder(&mut self, rec: Box<dyn Recorder>) {
        self.rec = Some(rec);
    }

    /// How many times this rank's timed receives have blocked on the
    /// mailbox condvar. A timeout that expires on an empty mailbox costs
    /// exactly one block; conformance tests use this to prove the backend
    /// never spins.
    pub fn timed_waits(&self) -> u64 {
        self.mailboxes[self.rank.0]
            .timed_waits
            .load(AtomicOrdering::Relaxed)
    }
}

impl<M: WireSize + Clone + Send + 'static> Transport for ThreadTransport<M> {
    type Msg = M;

    fn rank(&self) -> Rank {
        self.rank
    }

    fn size(&self) -> usize {
        self.size
    }

    fn send(&mut self, to: Rank, tag: Tag, msg: M) {
        assert!(to.0 < self.size, "send to out-of-range rank {to}");
        assert_ne!(to, self.rank, "self-sends are not modelled");
        let bytes = msg.wire_size() + HEADER_BYTES;
        let mut extra_copies = 0;
        let mut msg = msg;
        if let Some(fs) = &self.faults {
            let fs = Arc::clone(fs);
            let t_now = SimTime::from_nanos(self.epoch.elapsed().as_nanos() as u64);
            let ctx = MsgCtx {
                src: self.rank.0,
                dst: to.0,
                bytes,
                now: t_now,
            };
            let mut spec = fs.spec.lock();
            let mut fate = spec.model.fate(&ctx);
            // A send addressed to a crashed rank is lost like a datagram
            // to a rebooting host — mirroring the sim and socket
            // backends so crash schedules behave the same on all three.
            if spec.crashes.is_down(to.0, t_now) {
                fate.deliver = false;
            }
            if !fate.deliver {
                fs.counters.lock()[self.rank.0].dropped += 1;
                if let Some(r) = self.rec.as_deref_mut() {
                    let t_ns = self.epoch.elapsed().as_nanos() as u64;
                    let rank = self.rank.0 as u32;
                    r.mark(
                        rank,
                        t_ns,
                        Mark::MsgSent {
                            to: to.0 as u32,
                            bytes: bytes as u64,
                        },
                    );
                    r.mark(
                        rank,
                        t_ns,
                        Mark::MessageDropped {
                            to: to.0 as u32,
                            bytes: bytes as u64,
                        },
                    );
                }
                return;
            }
            {
                let mut counters = fs.counters.lock();
                counters[self.rank.0].delivered += 1;
                counters[self.rank.0].duplicated += u64::from(fate.extra_copies);
            }
            extra_copies = fate.extra_copies;
            // Corruption applies only through a payload-aware corruptor
            // (there is no frame layer to flip bytes in); without one,
            // corruption fates are no-ops, as on the sim backend.
            if fate.corrupt_amp > 0.0 {
                if let Some(c) = spec.corruptor.as_mut() {
                    let salt = fs.salt.fetch_add(1, AtomicOrdering::Relaxed);
                    c(&mut msg, fate.corrupt_amp, salt);
                }
            }
        }
        let delay = self.opts.latency + self.opts.per_byte * bytes as u32;
        let visible_at = Instant::now() + delay;
        if let Some(r) = self.rec.as_deref_mut() {
            let t_ns = self.epoch.elapsed().as_nanos() as u64;
            r.mark(
                self.rank.0 as u32,
                t_ns,
                Mark::MsgSent {
                    to: to.0 as u32,
                    bytes: bytes as u64,
                },
            );
            if extra_copies > 0 {
                r.mark(
                    self.rank.0 as u32,
                    t_ns,
                    Mark::MessageDuplicated {
                        to: to.0 as u32,
                        copies: extra_copies,
                    },
                );
            }
        }
        for _ in 0..extra_copies {
            self.mailboxes[to.0].push(
                visible_at,
                Envelope {
                    src: self.rank,
                    tag,
                    msg: msg.clone(),
                },
            );
        }
        self.mailboxes[to.0].push(
            visible_at,
            Envelope {
                src: self.rank,
                tag,
                msg,
            },
        );
    }

    fn try_recv(&mut self) -> Option<Envelope<M>> {
        let env = self.mailboxes[self.rank.0].try_pop()?;
        if let Some(r) = self.rec.as_deref_mut() {
            let bytes = (env.msg.wire_size() + HEADER_BYTES) as u64;
            let t_ns = self.epoch.elapsed().as_nanos() as u64;
            r.mark(
                self.rank.0 as u32,
                t_ns,
                Mark::MsgRecv {
                    from: env.src.0 as u32,
                    bytes,
                },
            );
        }
        Some(env)
    }

    fn recv(&mut self) -> Envelope<M> {
        let env = self.mailboxes[self.rank.0].pop_blocking();
        if let Some(r) = self.rec.as_deref_mut() {
            let bytes = (env.msg.wire_size() + HEADER_BYTES) as u64;
            let t_ns = self.epoch.elapsed().as_nanos() as u64;
            r.mark(
                self.rank.0 as u32,
                t_ns,
                Mark::MsgRecv {
                    from: env.src.0 as u32,
                    bytes,
                },
            );
        }
        env
    }

    fn compute(&mut self, ops: u64) {
        if ops == 0 {
            return;
        }
        let secs = ops as f64 / (self.opts.mips * 1e6);
        std::thread::sleep(Duration::from_secs_f64(secs));
    }

    fn now(&self) -> SimTime {
        SimTime::from_nanos(self.epoch.elapsed().as_nanos() as u64)
    }

    fn recv_timeout(&mut self, timeout: SimDuration) -> Option<Envelope<M>> {
        // Same semantics as the sim backend: one immediate poll, a zero
        // timeout degrades to that poll, and otherwise a single wait to
        // an absolute deadline.
        if let Some(env) = self.try_recv() {
            return Some(env);
        }
        if timeout == SimDuration::ZERO {
            return None;
        }
        let armed = Instant::now();
        let deadline = armed + Duration::from_nanos(timeout.as_nanos());
        let env = self.mailboxes[self.rank.0].pop_deadline(deadline);
        if let Some(r) = self.rec.as_deref_mut() {
            let t_ns = self.epoch.elapsed().as_nanos() as u64;
            let waited_ns = armed.elapsed().as_nanos() as u64;
            match &env {
                Some(env) => {
                    let bytes = (env.msg.wire_size() + HEADER_BYTES) as u64;
                    r.mark(
                        self.rank.0 as u32,
                        t_ns,
                        Mark::RecvWakeup {
                            from: env.src.0 as u32,
                            waited_ns,
                        },
                    );
                    r.mark(
                        self.rank.0 as u32,
                        t_ns,
                        Mark::MsgRecv {
                            from: env.src.0 as u32,
                            bytes,
                        },
                    );
                }
                None => r.mark(self.rank.0 as u32, t_ns, Mark::TimerFired { waited_ns }),
            }
        }
        env
    }

    fn sleep(&mut self, d: SimDuration) {
        if d > SimDuration::ZERO {
            std::thread::sleep(Duration::from_nanos(d.as_nanos()));
        }
    }

    fn fault_counters(&self) -> FaultCounters {
        self.faults
            .as_ref()
            .map(|fs| fs.counters.lock()[self.rank.0])
            .unwrap_or_default()
    }

    fn recorder(&mut self) -> Option<&mut (dyn Recorder + 'static)> {
        self.rec.as_deref_mut()
    }
}

/// Run one closure per rank on `p` real OS threads.
///
/// Returns each rank's result in rank order. Panics in any rank propagate.
pub fn run_thread_cluster<M, R, F>(p: usize, opts: ThreadClusterOptions, f: F) -> Vec<R>
where
    M: WireSize + Clone + Send + 'static,
    R: Send,
    F: Fn(&mut ThreadTransport<M>) -> R + Send + Sync,
{
    run_thread_cluster_inner(p, opts, None, f)
}

/// [`run_thread_cluster`] with a message-fault layer.
///
/// Unlike the sim backend, thread-backend fates depend on the real
/// interleaving of sends, so runs are *not* reproducible; this exists for
/// liveness demos and cross-backend smoke tests. Crash plans and payload
/// corruption are sim-only.
pub fn run_thread_cluster_with_faults<M, R, F>(
    p: usize,
    opts: ThreadClusterOptions,
    model: impl FaultModel + 'static,
    f: F,
) -> Vec<R>
where
    M: WireSize + Clone + Send + 'static,
    R: Send,
    F: Fn(&mut ThreadTransport<M>) -> R + Send + Sync,
{
    run_thread_cluster_with_fault_spec(p, opts, FaultSpec::new(model), f)
}

/// [`run_thread_cluster`] with a full [`FaultSpec`]: fate model plus
/// scripted crash plan plus payload corruptor, mirroring the sim and
/// socket backends so a crash→rejoin schedule runs identically (in
/// values) on all three.
pub fn run_thread_cluster_with_fault_spec<M, R, F>(
    p: usize,
    opts: ThreadClusterOptions,
    spec: FaultSpec<M>,
    f: F,
) -> Vec<R>
where
    M: WireSize + Clone + Send + 'static,
    R: Send,
    F: Fn(&mut ThreadTransport<M>) -> R + Send + Sync,
{
    let faults = Arc::new(ThreadFaults {
        spec: Mutex::new(spec),
        counters: Mutex::new(vec![FaultCounters::default(); p]),
        salt: AtomicU64::new(0),
    });
    run_thread_cluster_inner(p, opts, Some(faults), f)
}

fn run_thread_cluster_inner<M, R, F>(
    p: usize,
    opts: ThreadClusterOptions,
    faults: Option<Arc<ThreadFaults<M>>>,
    f: F,
) -> Vec<R>
where
    M: WireSize + Clone + Send + 'static,
    R: Send,
    F: Fn(&mut ThreadTransport<M>) -> R + Send + Sync,
{
    assert!(p >= 1, "need at least one rank");
    let mailboxes: Arc<Vec<ThreadMailbox<M>>> =
        Arc::new((0..p).map(|_| ThreadMailbox::new()).collect());
    let epoch = Instant::now();

    std::thread::scope(|s| {
        let handles: Vec<_> = (0..p)
            .map(|r| {
                let mailboxes = Arc::clone(&mailboxes);
                let opts = opts.clone();
                let faults = faults.clone();
                let f = &f;
                s.spawn(move || {
                    let mut t = ThreadTransport {
                        rank: Rank(r),
                        size: p,
                        opts,
                        mailboxes,
                        epoch,
                        rec: None,
                        faults,
                    };
                    f(&mut t)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rank thread panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_and_size_are_correct() {
        let ids = run_thread_cluster::<(), _, _>(3, ThreadClusterOptions::default(), |t| {
            (t.rank().0, t.size())
        });
        assert_eq!(ids, vec![(0, 3), (1, 3), (2, 3)]);
    }

    #[test]
    fn messages_arrive_with_content_intact() {
        let sums = run_thread_cluster::<u64, _, _>(4, ThreadClusterOptions::default(), |t| {
            t.broadcast(Tag(0), 10 + t.rank().0 as u64);
            (0..t.size() - 1).map(|_| t.recv().msg).sum::<u64>()
        });
        // Each rank receives the other three values out of {10,11,12,13}.
        let total: u64 = 10 + 11 + 12 + 13;
        for (me, s) in sums.iter().enumerate() {
            assert_eq!(*s, total - (10 + me as u64));
        }
    }

    #[test]
    fn injected_latency_delays_visibility() {
        let opts = ThreadClusterOptions {
            latency: Duration::from_millis(30),
            ..ThreadClusterOptions::default()
        };
        let outcomes = run_thread_cluster::<u8, _, _>(2, opts, |t| {
            if t.rank().0 == 0 {
                t.send(Rank(1), Tag(0), 1);
                true
            } else {
                let early = t.try_recv().is_some();
                let start = Instant::now();
                let _ = t.recv();
                let waited = start.elapsed();
                !early && waited >= Duration::from_millis(15)
            }
        });
        assert!(outcomes.iter().all(|ok| *ok), "latency was not observed");
    }

    #[test]
    fn earliest_visible_message_pops_first() {
        let mb = ThreadMailbox::<u8>::new();
        let now = Instant::now();
        mb.push(
            now + Duration::from_millis(5),
            Envelope {
                src: Rank(0),
                tag: Tag(0),
                msg: 2,
            },
        );
        mb.push(
            now,
            Envelope {
                src: Rank(0),
                tag: Tag(0),
                msg: 1,
            },
        );
        assert_eq!(mb.pop_blocking().msg, 1);
        assert_eq!(mb.pop_blocking().msg, 2);
    }

    #[test]
    fn try_pop_respects_visibility() {
        let mb = ThreadMailbox::<u8>::new();
        mb.push(
            Instant::now() + Duration::from_secs(60),
            Envelope {
                src: Rank(0),
                tag: Tag(0),
                msg: 9,
            },
        );
        assert!(mb.try_pop().is_none());
    }

    #[test]
    fn thread_fault_layer_drops_everything_under_total_loss() {
        use netsim::Loss;
        let results = run_thread_cluster_with_faults::<u64, _, _>(
            2,
            ThreadClusterOptions::default(),
            Loss::new(1.0, 7),
            |t| {
                if t.rank().0 == 0 {
                    for i in 0..5 {
                        t.send(Rank(1), Tag(0), i);
                    }
                    t.fault_counters().dropped
                } else {
                    // Nothing ever arrives; the bounded wait must expire.
                    let got = t.recv_timeout(SimDuration::from_millis(20));
                    assert!(got.is_none(), "total loss delivered a message");
                    0
                }
            },
        );
        assert_eq!(results[0], 5);
    }

    #[test]
    fn thread_recv_timeout_delivers_when_a_message_is_in_flight() {
        let results = run_thread_cluster::<u64, _, _>(
            2,
            ThreadClusterOptions {
                latency: Duration::from_millis(2),
                ..ThreadClusterOptions::default()
            },
            |t| {
                if t.rank().0 == 0 {
                    t.send(Rank(1), Tag(0), 42);
                    0
                } else {
                    t.recv_timeout(SimDuration::from_millis(5_000))
                        .expect("message should arrive before the timeout")
                        .msg
                }
            },
        );
        assert_eq!(results[1], 42);
    }

    #[test]
    fn timed_wait_on_empty_mailbox_blocks_exactly_once() {
        // The zero-spin property: running a timeout to expiry on an empty
        // mailbox must cost exactly one condvar block — no quanta, no
        // wake-check-sleep loop.
        let mb = ThreadMailbox::<u8>::new();
        let start = Instant::now();
        let got = mb.pop_deadline(start + Duration::from_millis(20));
        assert!(got.is_none());
        assert!(
            start.elapsed() >= Duration::from_millis(20),
            "woke before the deadline"
        );
        assert_eq!(mb.timed_waits.load(AtomicOrdering::Relaxed), 1);
    }

    #[test]
    fn timed_wait_wakes_for_a_pending_visibility_without_spinning() {
        let mb = ThreadMailbox::<u8>::new();
        let now = Instant::now();
        mb.push(
            now + Duration::from_millis(10),
            Envelope {
                src: Rank(0),
                tag: Tag(0),
                msg: 7,
            },
        );
        let got = mb.pop_deadline(now + Duration::from_millis(200));
        assert_eq!(got.map(|e| e.msg), Some(7));
        // One wait to the message's visibility instant; allow one extra in
        // case the OS timer rounds the wake a hair early.
        assert!(mb.timed_waits.load(AtomicOrdering::Relaxed) <= 2);
    }

    #[test]
    fn thread_recv_timeout_zero_degrades_to_try_recv() {
        let results = run_thread_cluster::<u8, _, _>(2, ThreadClusterOptions::default(), |t| {
            if t.rank().0 == 0 {
                t.send(Rank(1), Tag(0), 5);
                0
            } else {
                // Wait for the message with a real timeout first so the
                // zero-timeout call below observes a non-empty mailbox.
                let first = t
                    .recv_timeout(SimDuration::from_millis(5_000))
                    .expect("message should arrive")
                    .msg;
                assert!(t.recv_timeout(SimDuration::ZERO).is_none());
                first
            }
        });
        assert_eq!(results[1], 5);
    }

    #[test]
    fn thread_recv_timeout_handles_tiny_timeouts() {
        // Sub-microsecond timeouts used to be quantised; now they are a
        // single bounded wait that still expires.
        let results = run_thread_cluster::<u8, _, _>(1, ThreadClusterOptions::default(), |t| {
            t.recv_timeout(SimDuration::from_nanos(10)).is_none()
        });
        assert!(results[0]);
    }

    #[test]
    fn compute_sleeps_roughly_the_right_time() {
        let opts = ThreadClusterOptions {
            mips: 1.0,
            ..ThreadClusterOptions::default()
        };
        let elapsed = run_thread_cluster::<(), _, _>(1, opts, |t| {
            let start = Instant::now();
            t.compute(20_000); // 20 ms at 1 MIPS
            start.elapsed()
        });
        assert!(
            elapsed[0] >= Duration::from_millis(15),
            "slept only {:?}",
            elapsed[0]
        );
    }
}
