//! Virtual-time transport backend: ranks are `desim` processes on a
//! `netsim` cluster. This is the backend all paper experiments run on —
//! deterministic, seedable, and fast (no real waiting).

use std::marker::PhantomData;
use std::sync::Arc;

use desim::{MailboxId, ProcessHandle, SimError, SimReport, SimTime, Simulation};
use netsim::{ClusterSpec, LoadModel, MachineSpec, MsgCtx, NetworkModel};
use obs::{Mark, Recorder};
use parking_lot::Mutex;

use crate::transport::Transport;
use crate::types::{Envelope, Rank, Tag, WireSize, HEADER_BYTES};

struct SharedNet {
    net: Box<dyn NetworkModel>,
    load: Box<dyn LoadModel>,
}

/// A rank's endpoint on a simulated cluster.
///
/// Created by [`run_sim_cluster`]; lives only inside the per-rank closure.
pub struct SimTransport<'a, 'h, M> {
    h: &'a mut ProcessHandle,
    rank: Rank,
    size: usize,
    machine: MachineSpec,
    mailboxes: Vec<MailboxId>,
    shared: Arc<Mutex<SharedNet>>,
    rec: Option<Box<dyn Recorder>>,
    _marker: PhantomData<fn() -> M>,
    _lifetime: PhantomData<&'h ()>,
}

impl<M: Send + 'static> SimTransport<'_, '_, M> {
    /// Record a trace annotation (visible in the [`SimReport`] if tracing
    /// was enabled).
    pub fn trace(&mut self, label: impl Into<String>) {
        self.h.trace(label);
    }

    /// Lazily-built trace annotation; free when tracing is disabled.
    pub fn trace_with(&mut self, label: impl FnOnce() -> String) {
        self.h.trace_with(label);
    }

    /// The capacity of the machine this rank runs on.
    pub fn machine(&self) -> MachineSpec {
        self.machine
    }

    /// Attach a structured telemetry sink for this rank. Typically an
    /// [`obs::SharedRecorder`] clone, so the events can be drained after
    /// [`run_sim_cluster`] returns. Message sends/receives are marked by
    /// the transport itself; spans and counters come from the algorithm
    /// via [`Transport::recorder`].
    pub fn set_recorder(&mut self, rec: Box<dyn Recorder>) {
        self.rec = Some(rec);
    }
}

impl<M: WireSize + Send + 'static> Transport for SimTransport<'_, '_, M> {
    type Msg = M;

    fn rank(&self) -> Rank {
        self.rank
    }

    fn size(&self) -> usize {
        self.size
    }

    fn send(&mut self, to: Rank, tag: Tag, msg: M) {
        assert!(to.0 < self.size, "send to out-of-range rank {to}");
        assert_ne!(to, self.rank, "self-sends are not modelled");
        let bytes = msg.wire_size() + HEADER_BYTES;
        let ctx = MsgCtx {
            src: self.rank.0,
            dst: to.0,
            bytes,
            now: self.h.now(),
        };
        let delay = self.shared.lock().net.delay(&ctx);
        if let Some(r) = self.rec.as_deref_mut() {
            r.mark(
                self.rank.0 as u32,
                self.h.now().as_nanos(),
                Mark::MsgSent {
                    to: to.0 as u32,
                    bytes: bytes as u64,
                },
            );
        }
        self.h.send(
            self.mailboxes[to.0],
            delay,
            Envelope {
                src: self.rank,
                tag,
                msg,
            },
        );
    }

    fn try_recv(&mut self) -> Option<Envelope<M>> {
        let env = self
            .h
            .try_recv_as::<Envelope<M>>(self.mailboxes[self.rank.0])?;
        if let Some(r) = self.rec.as_deref_mut() {
            let bytes = (env.msg.wire_size() + HEADER_BYTES) as u64;
            r.mark(
                self.rank.0 as u32,
                self.h.now().as_nanos(),
                Mark::MsgRecv {
                    from: env.src.0 as u32,
                    bytes,
                },
            );
        }
        Some(env)
    }

    fn recv(&mut self) -> Envelope<M> {
        let env = self.h.recv_as::<Envelope<M>>(self.mailboxes[self.rank.0]);
        if let Some(r) = self.rec.as_deref_mut() {
            let bytes = (env.msg.wire_size() + HEADER_BYTES) as u64;
            r.mark(
                self.rank.0 as u32,
                self.h.now().as_nanos(),
                Mark::MsgRecv {
                    from: env.src.0 as u32,
                    bytes,
                },
            );
        }
        env
    }

    fn compute(&mut self, ops: u64) {
        if ops == 0 {
            return;
        }
        let factor = self.shared.lock().load.factor(self.rank.0, self.h.now());
        self.h
            .advance(self.machine.ops_duration(ops).mul_f64(factor));
    }

    fn now(&self) -> SimTime {
        self.h.now()
    }

    fn recorder(&mut self) -> Option<&mut (dyn Recorder + 'static)> {
        self.rec.as_deref_mut()
    }
}

/// Run one closure per machine of `cluster` in deterministic virtual time.
///
/// Every rank executes `f`, distinguishing itself via
/// [`Transport::rank`]. Returns each rank's result (rank order) plus the
/// kernel's [`SimReport`].
///
/// # Example
///
/// ```
/// use mpk::{run_sim_cluster, Transport, Tag, Rank};
/// use netsim::{ClusterSpec, ConstantLatency, Unloaded};
/// use desim::SimDuration;
///
/// let cluster = ClusterSpec::homogeneous(3, 50.0);
/// let (sums, report) = run_sim_cluster::<u64, _, _>(
///     &cluster,
///     ConstantLatency(SimDuration::from_millis(1)),
///     Unloaded,
///     false,
///     |t| {
///         t.broadcast(Tag(0), t.rank().0 as u64);
///         (0..t.size() - 1).map(|_| t.recv().msg).sum::<u64>()
///     },
/// )
/// .unwrap();
/// assert_eq!(sums, vec![3, 2, 1]); // each rank sums the others' ids
/// assert!(report.end_time.as_nanos() > 0);
/// ```
pub fn run_sim_cluster<M, R, F>(
    cluster: &ClusterSpec,
    net: impl NetworkModel + 'static,
    load: impl LoadModel + 'static,
    trace: bool,
    f: F,
) -> Result<(Vec<R>, SimReport), SimError>
where
    M: WireSize + Send + 'static,
    R: Send + 'static,
    F: for<'a, 'h> Fn(&mut SimTransport<'a, 'h, M>) -> R + Send + Sync + 'static,
{
    let mut sim = Simulation::new();
    if trace {
        sim.enable_tracing();
    }
    let p = cluster.len();
    let mailboxes: Vec<MailboxId> = (0..p).map(|_| sim.create_mailbox()).collect();
    let shared = Arc::new(Mutex::new(SharedNet {
        net: Box::new(net),
        load: Box::new(load),
    }));
    let f = Arc::new(f);

    let results: Vec<_> = (0..p)
        .map(|r| {
            let mailboxes = mailboxes.clone();
            let shared = Arc::clone(&shared);
            let machine = cluster.machines()[r];
            let f = Arc::clone(&f);
            sim.spawn(format!("rank{r}"), move |h| {
                let mut t = SimTransport {
                    h,
                    rank: Rank(r),
                    size: p,
                    machine,
                    mailboxes,
                    shared,
                    rec: None,
                    _marker: PhantomData,
                    _lifetime: PhantomData,
                };
                f(&mut t)
            })
        })
        .collect();

    let report = sim.run()?;
    let outs = results
        .iter()
        .map(|pr| pr.take().expect("rank finished without a result"))
        .collect();
    Ok((outs, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use desim::SimDuration;
    use netsim::{ConstantLatency, SharedMedium, Unloaded};

    #[test]
    fn all_ranks_see_consistent_identity() {
        let cluster = ClusterSpec::homogeneous(4, 10.0);
        let (ids, _) = run_sim_cluster::<(), _, _>(
            &cluster,
            ConstantLatency(SimDuration::ZERO),
            Unloaded,
            false,
            |t| (t.rank().0, t.size()),
        )
        .unwrap();
        assert_eq!(ids, vec![(0, 4), (1, 4), (2, 4), (3, 4)]);
    }

    #[test]
    fn compute_time_reflects_machine_speed() {
        // Two machines, 100 and 10 MIPS; both do 1M ops.
        let cluster = ClusterSpec::new(vec![MachineSpec::new(100.0), MachineSpec::new(10.0)]);
        let (times, report) = run_sim_cluster::<(), _, _>(
            &cluster,
            ConstantLatency(SimDuration::ZERO),
            Unloaded,
            false,
            |t| {
                t.compute(1_000_000);
                t.now().as_nanos()
            },
        )
        .unwrap();
        assert_eq!(times[0], 10_000_000); // 10 ms on the fast machine
        assert_eq!(times[1], 100_000_000); // 100 ms on the slow machine
        assert_eq!(report.end_time.as_nanos(), 100_000_000);
    }

    #[test]
    fn broadcast_reaches_everyone() {
        let cluster = ClusterSpec::homogeneous(5, 10.0);
        let (got, _) = run_sim_cluster::<u64, _, _>(
            &cluster,
            ConstantLatency(SimDuration::from_millis(1)),
            Unloaded,
            false,
            |t| {
                t.broadcast(Tag(7), 100 + t.rank().0 as u64);
                let mut from: Vec<(usize, u64, u32)> = (0..t.size() - 1)
                    .map(|_| {
                        let e = t.recv();
                        (e.src.0, e.msg, e.tag.0)
                    })
                    .collect();
                from.sort();
                from
            },
        )
        .unwrap();
        for (me, msgs) in got.iter().enumerate() {
            let expected: Vec<(usize, u64, u32)> = (0..5)
                .filter(|k| *k != me)
                .map(|k| (k, 100 + k as u64, 7))
                .collect();
            assert_eq!(msgs, &expected);
        }
    }

    #[test]
    fn shared_medium_contention_affects_end_time() {
        // All four ranks blast a 10 KB message at rank 0 at t=0; the bus
        // serializes them. 1 MB/s → each takes ~10 ms of bus time.
        let cluster = ClusterSpec::homogeneous(5, 10.0);
        let run = |bw: f64| {
            let (_, report) = run_sim_cluster::<Vec<u8>, _, _>(
                &cluster,
                SharedMedium::new(SimDuration::ZERO, bw),
                Unloaded,
                false,
                |t| {
                    if t.rank().0 == 0 {
                        for _ in 0..4 {
                            let _ = t.recv();
                        }
                    } else {
                        t.send(Rank(0), Tag(0), vec![0u8; 10_000]);
                    }
                },
            )
            .unwrap();
            report.end_time.as_secs_f64()
        };
        let slow = run(1e6);
        let fast = run(1e8);
        assert!(slow > 4.0 * 9e-3, "bus must serialize: {slow}");
        assert!(fast < slow / 10.0, "faster bus must shrink the run");
    }

    #[test]
    fn determinism_of_full_cluster_run() {
        let run = || {
            let cluster = ClusterSpec::paper_model_example();
            let (outs, report) = run_sim_cluster::<(u64, f64), _, _>(
                &cluster,
                SharedMedium::new(SimDuration::from_micros(200), 1.25e6),
                Unloaded,
                false,
                |t| {
                    let mut acc = 0.0f64;
                    for round in 0..5u64 {
                        t.broadcast(Tag(0), (round, t.rank().0 as f64));
                        for _ in 0..t.size() - 1 {
                            acc += t.recv().msg.1;
                        }
                        t.compute(10_000);
                    }
                    (t.now().as_nanos(), acc)
                },
            )
            .unwrap();
            (outs, report.end_time)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn rank_closure_error_propagates() {
        let cluster = ClusterSpec::homogeneous(2, 10.0);
        let res = run_sim_cluster::<(), _, _>(
            &cluster,
            ConstantLatency(SimDuration::ZERO),
            Unloaded,
            false,
            |t| {
                if t.rank().0 == 1 {
                    panic!("rank 1 exploded");
                }
                t.recv(); // rank 0 waits forever
            },
        );
        match res {
            Err(SimError::ProcessPanicked { name, message }) => {
                assert_eq!(name, "rank1");
                assert!(message.contains("exploded"));
            }
            other => panic!("expected panic, got {:?}", other.map(|(r, _)| r)),
        }
    }
}
