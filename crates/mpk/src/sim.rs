//! Virtual-time transport backend: ranks are `desim` processes on a
//! `netsim` cluster. This is the backend all paper experiments run on —
//! deterministic, seedable, and fast (no real waiting).

use std::marker::PhantomData;
use std::sync::Arc;

use desim::{
    AsyncHandle, MailboxId, ProcessHandle, SimDuration, SimError, SimReport, SimTime, Simulation,
    TieBreak,
};
use netsim::{
    ClusterSpec, CrashPlan, FaultModel, LoadModel, MachineSpec, MsgCtx, NetworkModel, NoFaults,
};
use obs::{Mark, Recorder};
use parking_lot::Mutex;

// `AsyncTransport` is deliberately referenced by path, not imported: with
// both traits in scope, every method call on a concrete `Transport` type
// (which the blanket impl also makes an `AsyncTransport`) would be
// ambiguous.
use crate::transport::Transport;
use crate::types::{Envelope, FaultCounters, Rank, Tag, WireSize, HEADER_BYTES};

/// How a corruption amplitude maps onto a concrete payload: called as
/// `(msg, amp, salt)`, where `salt` is a deterministic per-hit counter so
/// the perturbation can draw reproducible noise without global state.
pub type Corruptor<M> = Box<dyn FnMut(&mut M, f64, u64) + Send>;

/// Fault-injection configuration of a simulated cluster run: the
/// per-message fate model, the scripted machine outages, and (optionally)
/// how corruption fates apply to this payload type.
pub struct FaultSpec<M> {
    /// Per-message fate model (loss, duplication, corruption, partitions).
    pub model: Box<dyn FaultModel>,
    /// Scripted machine outages. The transport drops sends addressed to a
    /// down rank, like datagrams to a rebooting host; the driver side
    /// (speccore) interprets the same plan to crash and recover ranks.
    pub crashes: CrashPlan,
    /// Applies a [`netsim::Fate::corrupt_amp`] to the payload. `None`
    /// turns corruption fates into no-ops.
    pub corruptor: Option<Corruptor<M>>,
}

impl<M> FaultSpec<M> {
    /// No faults: the configuration [`run_sim_cluster`] uses.
    pub fn none() -> Self {
        FaultSpec {
            model: Box::new(NoFaults),
            crashes: CrashPlan::none(),
            corruptor: None,
        }
    }

    /// Faults from a fate model alone.
    pub fn new(model: impl FaultModel + 'static) -> Self {
        FaultSpec {
            model: Box::new(model),
            ..FaultSpec::none()
        }
    }

    /// Add scripted machine outages.
    pub fn with_crashes(mut self, crashes: CrashPlan) -> Self {
        self.crashes = crashes;
        self
    }

    /// Add a payload corruptor.
    pub fn with_corruptor(mut self, f: impl FnMut(&mut M, f64, u64) + Send + 'static) -> Self {
        self.corruptor = Some(Box::new(f));
        self
    }
}

struct SharedNet<M> {
    net: Box<dyn NetworkModel>,
    load: Box<dyn LoadModel>,
    faults: FaultSpec<M>,
    counters: Vec<FaultCounters>,
    corrupt_salt: u64,
}

/// A rank's endpoint on a simulated cluster.
///
/// Created by [`run_sim_cluster`]; lives only inside the per-rank closure.
pub struct SimTransport<'a, 'h, M> {
    h: &'a mut ProcessHandle,
    rank: Rank,
    size: usize,
    machine: MachineSpec,
    mailboxes: Vec<MailboxId>,
    shared: Arc<Mutex<SharedNet<M>>>,
    rec: Option<Box<dyn Recorder>>,
    _lifetime: PhantomData<&'h ()>,
}

impl<M: Send + 'static> SimTransport<'_, '_, M> {
    /// Record a trace annotation (visible in the [`SimReport`] if tracing
    /// was enabled).
    pub fn trace(&mut self, label: impl Into<String>) {
        self.h.trace(label);
    }

    /// Lazily-built trace annotation; free when tracing is disabled.
    pub fn trace_with(&mut self, label: impl FnOnce() -> String) {
        self.h.trace_with(label);
    }

    /// The capacity of the machine this rank runs on.
    pub fn machine(&self) -> MachineSpec {
        self.machine
    }

    /// Attach a structured telemetry sink for this rank. Typically an
    /// [`obs::SharedRecorder`] clone, so the events can be drained after
    /// [`run_sim_cluster`] returns. Message sends/receives are marked by
    /// the transport itself; spans and counters come from the algorithm
    /// via [`Transport::recorder`].
    pub fn set_recorder(&mut self, rec: Box<dyn Recorder>) {
        self.rec = Some(rec);
    }
}

impl<M: WireSize + Clone + Send + 'static> Transport for SimTransport<'_, '_, M> {
    type Msg = M;

    fn rank(&self) -> Rank {
        self.rank
    }

    fn size(&self) -> usize {
        self.size
    }

    fn send(&mut self, to: Rank, tag: Tag, msg: M) {
        assert!(to.0 < self.size, "send to out-of-range rank {to}");
        assert_ne!(to, self.rank, "self-sends are not modelled");
        let bytes = msg.wire_size() + HEADER_BYTES;
        let ctx = MsgCtx {
            src: self.rank.0,
            dst: to.0,
            bytes,
            now: self.h.now(),
        };
        // Fate first, then the network: a dropped message never touches
        // the medium, so fault-free runs see the identical delay stream.
        let (fate, delay) = {
            let mut sh = self.shared.lock();
            let fate = sh.faults.model.fate(&ctx);
            let down = !sh.faults.crashes.is_empty() && sh.faults.crashes.is_down(to.0, ctx.now);
            if !fate.deliver || down {
                sh.counters[self.rank.0].dropped += 1;
                drop(sh);
                if let Some(r) = self.rec.as_deref_mut() {
                    let t_ns = self.h.now().as_nanos();
                    let rank = self.rank.0 as u32;
                    r.mark(
                        rank,
                        t_ns,
                        Mark::MsgSent {
                            to: to.0 as u32,
                            bytes: bytes as u64,
                        },
                    );
                    r.mark(
                        rank,
                        t_ns,
                        Mark::MessageDropped {
                            to: to.0 as u32,
                            bytes: bytes as u64,
                        },
                    );
                }
                return;
            }
            sh.counters[self.rank.0].delivered += 1;
            if fate.extra_copies > 0 {
                sh.counters[self.rank.0].duplicated += u64::from(fate.extra_copies);
            }
            (fate, sh.net.delay(&ctx))
        };
        let mut msg = msg;
        if fate.corrupt_amp > 0.0 {
            let mut sh = self.shared.lock();
            sh.corrupt_salt = sh.corrupt_salt.wrapping_add(1);
            let salt = sh.corrupt_salt;
            if let Some(c) = sh.faults.corruptor.as_mut() {
                c(&mut msg, fate.corrupt_amp, salt);
            }
        }
        if let Some(r) = self.rec.as_deref_mut() {
            let t_ns = self.h.now().as_nanos();
            let rank = self.rank.0 as u32;
            r.mark(
                rank,
                t_ns,
                Mark::MsgSent {
                    to: to.0 as u32,
                    bytes: bytes as u64,
                },
            );
            if fate.extra_copies > 0 {
                r.mark(
                    rank,
                    t_ns,
                    Mark::MessageDuplicated {
                        to: to.0 as u32,
                        copies: fate.extra_copies,
                    },
                );
            }
        }
        // Each extra copy re-consults the network: duplicates occupy the
        // medium like any other message.
        for _ in 0..fate.extra_copies {
            let d = self.shared.lock().net.delay(&ctx);
            self.h.send(
                self.mailboxes[to.0],
                d,
                Envelope {
                    src: self.rank,
                    tag,
                    msg: msg.clone(),
                },
            );
        }
        self.h.send(
            self.mailboxes[to.0],
            delay,
            Envelope {
                src: self.rank,
                tag,
                msg,
            },
        );
    }

    fn try_recv(&mut self) -> Option<Envelope<M>> {
        let env = self
            .h
            .try_recv_as::<Envelope<M>>(self.mailboxes[self.rank.0])?;
        if let Some(r) = self.rec.as_deref_mut() {
            let bytes = (env.msg.wire_size() + HEADER_BYTES) as u64;
            r.mark(
                self.rank.0 as u32,
                self.h.now().as_nanos(),
                Mark::MsgRecv {
                    from: env.src.0 as u32,
                    bytes,
                },
            );
        }
        Some(env)
    }

    fn recv(&mut self) -> Envelope<M> {
        let env = self.h.recv_as::<Envelope<M>>(self.mailboxes[self.rank.0]);
        if let Some(r) = self.rec.as_deref_mut() {
            let bytes = (env.msg.wire_size() + HEADER_BYTES) as u64;
            r.mark(
                self.rank.0 as u32,
                self.h.now().as_nanos(),
                Mark::MsgRecv {
                    from: env.src.0 as u32,
                    bytes,
                },
            );
        }
        env
    }

    fn compute(&mut self, ops: u64) {
        if ops == 0 {
            return;
        }
        let factor = self.shared.lock().load.factor(self.rank.0, self.h.now());
        self.h
            .advance(self.machine.ops_duration(ops).mul_f64(factor));
    }

    fn now(&self) -> SimTime {
        self.h.now()
    }

    fn recv_timeout(&mut self, timeout: SimDuration) -> Option<Envelope<M>> {
        if let Some(env) = Transport::try_recv(self) {
            return Some(env);
        }
        if timeout == SimDuration::ZERO {
            return None;
        }
        // Event-driven timed receive: the kernel arms one deadline timer
        // and wakes this process either at the exact arrival time of the
        // next message or exactly at the deadline — never in between.
        let armed_at = self.h.now();
        let deadline = armed_at + timeout;
        let env = self
            .h
            .recv_deadline_as::<Envelope<M>>(self.mailboxes[self.rank.0], deadline);
        if let Some(r) = self.rec.as_deref_mut() {
            let now = self.h.now();
            let waited_ns = (now - armed_at).as_nanos();
            match &env {
                Some(env) => {
                    let bytes = (env.msg.wire_size() + HEADER_BYTES) as u64;
                    r.mark(
                        self.rank.0 as u32,
                        now.as_nanos(),
                        Mark::RecvWakeup {
                            from: env.src.0 as u32,
                            waited_ns,
                        },
                    );
                    r.mark(
                        self.rank.0 as u32,
                        now.as_nanos(),
                        Mark::MsgRecv {
                            from: env.src.0 as u32,
                            bytes,
                        },
                    );
                }
                None => r.mark(
                    self.rank.0 as u32,
                    now.as_nanos(),
                    Mark::TimerFired { waited_ns },
                ),
            }
        }
        env
    }

    fn sleep(&mut self, d: SimDuration) {
        if d > SimDuration::ZERO {
            self.h.advance(d);
        }
    }

    fn fault_counters(&self) -> FaultCounters {
        self.shared.lock().counters[self.rank.0]
    }

    fn recorder(&mut self) -> Option<&mut (dyn Recorder + 'static)> {
        self.rec.as_deref_mut()
    }
}

/// A rank's endpoint on a simulated cluster, for *stackless* ranks.
///
/// The async twin of [`SimTransport`]: created by [`run_sim_proc_cluster`]
/// and moved into the per-rank `async` body. Where `SimTransport` drives a
/// `ProcessHandle` (one parked OS thread per rank), `SimIo` drives an
/// [`AsyncHandle`] — each `.await` suspends the rank's state machine into
/// the `desim` event kernel, so thousands of ranks share one OS thread.
///
/// Every modelled effect (fate-before-network ordering, crash-window drops,
/// duplicate copies re-consulting the medium, load-scaled compute, telemetry
/// marks) is line-for-line the same as [`SimTransport`]'s, which is what
/// makes runs on the two kernels bit-identical.
pub struct SimIo<M> {
    h: AsyncHandle,
    rank: Rank,
    size: usize,
    machine: MachineSpec,
    mailboxes: Arc<Vec<MailboxId>>,
    shared: Arc<Mutex<SharedNet<M>>>,
    rec: Option<Box<dyn Recorder>>,
}

impl<M: Send + 'static> SimIo<M> {
    /// Record a trace annotation (visible in the [`SimReport`] if tracing
    /// was enabled).
    pub async fn trace(&mut self, label: impl Into<String>) {
        self.h.trace(label).await;
    }

    /// Lazily-built trace annotation; free when tracing is disabled.
    pub async fn trace_with(&mut self, label: impl FnOnce() -> String) {
        self.h.trace_with(label).await;
    }

    /// The capacity of the machine this rank runs on.
    pub fn machine(&self) -> MachineSpec {
        self.machine
    }

    /// Attach a structured telemetry sink for this rank (see
    /// [`SimTransport::set_recorder`]).
    pub fn set_recorder(&mut self, rec: Box<dyn Recorder>) {
        self.rec = Some(rec);
    }
}

impl<M: WireSize + Clone + Send + 'static> crate::transport::AsyncTransport for SimIo<M> {
    type Msg = M;

    fn rank(&self) -> Rank {
        self.rank
    }

    fn size(&self) -> usize {
        self.size
    }

    async fn send(&mut self, to: Rank, tag: Tag, msg: M) {
        assert!(to.0 < self.size, "send to out-of-range rank {to}");
        assert_ne!(to, self.rank, "self-sends are not modelled");
        let bytes = msg.wire_size() + HEADER_BYTES;
        let ctx = MsgCtx {
            src: self.rank.0,
            dst: to.0,
            bytes,
            now: self.h.now(),
        };
        // Fate first, then the network: a dropped message never touches
        // the medium, so fault-free runs see the identical delay stream.
        let (fate, delay) = {
            let mut sh = self.shared.lock();
            let fate = sh.faults.model.fate(&ctx);
            let down = !sh.faults.crashes.is_empty() && sh.faults.crashes.is_down(to.0, ctx.now);
            if !fate.deliver || down {
                sh.counters[self.rank.0].dropped += 1;
                drop(sh);
                if let Some(r) = self.rec.as_deref_mut() {
                    let t_ns = self.h.now().as_nanos();
                    let rank = self.rank.0 as u32;
                    r.mark(
                        rank,
                        t_ns,
                        Mark::MsgSent {
                            to: to.0 as u32,
                            bytes: bytes as u64,
                        },
                    );
                    r.mark(
                        rank,
                        t_ns,
                        Mark::MessageDropped {
                            to: to.0 as u32,
                            bytes: bytes as u64,
                        },
                    );
                }
                return;
            }
            sh.counters[self.rank.0].delivered += 1;
            if fate.extra_copies > 0 {
                sh.counters[self.rank.0].duplicated += u64::from(fate.extra_copies);
            }
            (fate, sh.net.delay(&ctx))
        };
        let mut msg = msg;
        if fate.corrupt_amp > 0.0 {
            let mut sh = self.shared.lock();
            sh.corrupt_salt = sh.corrupt_salt.wrapping_add(1);
            let salt = sh.corrupt_salt;
            if let Some(c) = sh.faults.corruptor.as_mut() {
                c(&mut msg, fate.corrupt_amp, salt);
            }
        }
        if let Some(r) = self.rec.as_deref_mut() {
            let t_ns = self.h.now().as_nanos();
            let rank = self.rank.0 as u32;
            r.mark(
                rank,
                t_ns,
                Mark::MsgSent {
                    to: to.0 as u32,
                    bytes: bytes as u64,
                },
            );
            if fate.extra_copies > 0 {
                r.mark(
                    rank,
                    t_ns,
                    Mark::MessageDuplicated {
                        to: to.0 as u32,
                        copies: fate.extra_copies,
                    },
                );
            }
        }
        // Each extra copy re-consults the network: duplicates occupy the
        // medium like any other message.
        for _ in 0..fate.extra_copies {
            let d = self.shared.lock().net.delay(&ctx);
            self.h
                .send(
                    self.mailboxes[to.0],
                    d,
                    Envelope {
                        src: self.rank,
                        tag,
                        msg: msg.clone(),
                    },
                )
                .await;
        }
        self.h
            .send(
                self.mailboxes[to.0],
                delay,
                Envelope {
                    src: self.rank,
                    tag,
                    msg,
                },
            )
            .await;
    }

    async fn try_recv(&mut self) -> Option<Envelope<M>> {
        let env = self
            .h
            .try_recv_as::<Envelope<M>>(self.mailboxes[self.rank.0])
            .await?;
        if let Some(r) = self.rec.as_deref_mut() {
            let bytes = (env.msg.wire_size() + HEADER_BYTES) as u64;
            r.mark(
                self.rank.0 as u32,
                self.h.now().as_nanos(),
                Mark::MsgRecv {
                    from: env.src.0 as u32,
                    bytes,
                },
            );
        }
        Some(env)
    }

    async fn recv(&mut self) -> Envelope<M> {
        let env = self
            .h
            .recv_as::<Envelope<M>>(self.mailboxes[self.rank.0])
            .await;
        if let Some(r) = self.rec.as_deref_mut() {
            let bytes = (env.msg.wire_size() + HEADER_BYTES) as u64;
            r.mark(
                self.rank.0 as u32,
                self.h.now().as_nanos(),
                Mark::MsgRecv {
                    from: env.src.0 as u32,
                    bytes,
                },
            );
        }
        env
    }

    async fn compute(&mut self, ops: u64) {
        if ops == 0 {
            return;
        }
        let factor = self.shared.lock().load.factor(self.rank.0, self.h.now());
        self.h
            .advance(self.machine.ops_duration(ops).mul_f64(factor))
            .await;
    }

    fn now(&self) -> SimTime {
        self.h.now()
    }

    async fn recv_timeout(&mut self, timeout: SimDuration) -> Option<Envelope<M>> {
        if let Some(env) = crate::transport::AsyncTransport::try_recv(self).await {
            return Some(env);
        }
        if timeout == SimDuration::ZERO {
            return None;
        }
        // Event-driven timed receive: the kernel arms one deadline timer
        // and wakes this process either at the exact arrival time of the
        // next message or exactly at the deadline — never in between.
        let armed_at = self.h.now();
        let deadline = armed_at + timeout;
        let env = self
            .h
            .recv_deadline_as::<Envelope<M>>(self.mailboxes[self.rank.0], deadline)
            .await;
        if let Some(r) = self.rec.as_deref_mut() {
            let now = self.h.now();
            let waited_ns = (now - armed_at).as_nanos();
            match &env {
                Some(env) => {
                    let bytes = (env.msg.wire_size() + HEADER_BYTES) as u64;
                    r.mark(
                        self.rank.0 as u32,
                        now.as_nanos(),
                        Mark::RecvWakeup {
                            from: env.src.0 as u32,
                            waited_ns,
                        },
                    );
                    r.mark(
                        self.rank.0 as u32,
                        now.as_nanos(),
                        Mark::MsgRecv {
                            from: env.src.0 as u32,
                            bytes,
                        },
                    );
                }
                None => r.mark(
                    self.rank.0 as u32,
                    now.as_nanos(),
                    Mark::TimerFired { waited_ns },
                ),
            }
        }
        env
    }

    async fn sleep(&mut self, d: SimDuration) {
        if d > SimDuration::ZERO {
            self.h.advance(d).await;
        }
    }

    fn fault_counters(&self) -> FaultCounters {
        self.shared.lock().counters[self.rank.0]
    }

    fn recorder(&mut self) -> Option<&mut (dyn Recorder + 'static)> {
        self.rec.as_deref_mut()
    }
}

/// Run one closure per machine of `cluster` in deterministic virtual time.
///
/// Every rank executes `f`, distinguishing itself via
/// [`Transport::rank`]. Returns each rank's result (rank order) plus the
/// kernel's [`SimReport`].
///
/// # Example
///
/// ```
/// use mpk::{run_sim_cluster, Transport, Tag, Rank};
/// use netsim::{ClusterSpec, ConstantLatency, Unloaded};
/// use desim::SimDuration;
///
/// let cluster = ClusterSpec::homogeneous(3, 50.0);
/// let (sums, report) = run_sim_cluster::<u64, _, _>(
///     &cluster,
///     ConstantLatency(SimDuration::from_millis(1)),
///     Unloaded,
///     false,
///     |t| {
///         t.broadcast(Tag(0), t.rank().0 as u64);
///         (0..t.size() - 1).map(|_| t.recv().msg).sum::<u64>()
///     },
/// )
/// .unwrap();
/// assert_eq!(sums, vec![3, 2, 1]); // each rank sums the others' ids
/// assert!(report.end_time.as_nanos() > 0);
/// ```
pub fn run_sim_cluster<M, R, F>(
    cluster: &ClusterSpec,
    net: impl NetworkModel + 'static,
    load: impl LoadModel + 'static,
    trace: bool,
    f: F,
) -> Result<(Vec<R>, SimReport), SimError>
where
    M: WireSize + Clone + Send + 'static,
    R: Send + 'static,
    F: for<'a, 'h> Fn(&mut SimTransport<'a, 'h, M>) -> R + Send + Sync + 'static,
{
    run_sim_cluster_with_faults(cluster, net, load, FaultSpec::none(), trace, f)
}

/// [`run_sim_cluster`] with a fault layer: every send is routed through
/// `faults.model` (and the crash plan) before it may touch the network
/// model. With [`FaultSpec::none`] this is exactly `run_sim_cluster` —
/// same delay stream, same schedule, bit for bit.
pub fn run_sim_cluster_with_faults<M, R, F>(
    cluster: &ClusterSpec,
    net: impl NetworkModel + 'static,
    load: impl LoadModel + 'static,
    faults: FaultSpec<M>,
    trace: bool,
    f: F,
) -> Result<(Vec<R>, SimReport), SimError>
where
    M: WireSize + Clone + Send + 'static,
    R: Send + 'static,
    F: for<'a, 'h> Fn(&mut SimTransport<'a, 'h, M>) -> R + Send + Sync + 'static,
{
    run_sim_cluster_with_options(
        cluster,
        net,
        load,
        faults,
        SimClusterOptions {
            trace,
            ..SimClusterOptions::default()
        },
        f,
    )
}

/// Kernel-level options of a simulated cluster run, beyond the
/// network/load/fault models. `Default` reproduces
/// [`run_sim_cluster_with_faults`] exactly.
#[derive(Clone, Copy, Debug, Default)]
pub struct SimClusterOptions {
    /// Record per-process trace annotations into the [`SimReport`].
    pub trace: bool,
    /// How simultaneous events are ordered ([`TieBreak::Fifo`] is the
    /// historical insertion order). Conformance tests re-run a scenario
    /// under [`TieBreak::Lifo`]/[`TieBreak::Seeded`] to prove its result
    /// does not hinge on same-virtual-time delivery tie-breaks.
    pub tie_break: TieBreak,
    /// Arm the kernel's scheduling-invariant oracle
    /// ([`Simulation::enable_scheduling_checks`]): every grant and blocking
    /// yield is validated, and a violation panics with a diagnostic. Used
    /// by the property suites; off by default.
    pub check_scheduling: bool,
}

/// [`run_sim_cluster_with_faults`] with explicit [`SimClusterOptions`]
/// (trace collection and same-time event ordering).
pub fn run_sim_cluster_with_options<M, R, F>(
    cluster: &ClusterSpec,
    net: impl NetworkModel + 'static,
    load: impl LoadModel + 'static,
    faults: FaultSpec<M>,
    options: SimClusterOptions,
    f: F,
) -> Result<(Vec<R>, SimReport), SimError>
where
    M: WireSize + Clone + Send + 'static,
    R: Send + 'static,
    F: for<'a, 'h> Fn(&mut SimTransport<'a, 'h, M>) -> R + Send + Sync + 'static,
{
    let mut sim = Simulation::new();
    if options.trace {
        sim.enable_tracing();
    }
    if options.check_scheduling {
        sim.enable_scheduling_checks();
    }
    sim.set_tie_break(options.tie_break);
    let p = cluster.len();
    let mailboxes: Vec<MailboxId> = (0..p).map(|_| sim.create_mailbox()).collect();
    let shared = Arc::new(Mutex::new(SharedNet {
        net: Box::new(net),
        load: Box::new(load),
        faults,
        counters: vec![FaultCounters::default(); p],
        corrupt_salt: 0,
    }));
    let f = Arc::new(f);

    let results: Vec<_> = (0..p)
        .map(|r| {
            let mailboxes = mailboxes.clone();
            let shared = Arc::clone(&shared);
            let machine = cluster.machines()[r];
            let f = Arc::clone(&f);
            sim.spawn(format!("rank{r}"), move |h| {
                let mut t = SimTransport {
                    h,
                    rank: Rank(r),
                    size: p,
                    machine,
                    mailboxes,
                    shared,
                    rec: None,
                    _lifetime: PhantomData,
                };
                f(&mut t)
            })
        })
        .collect();

    let report = sim.run()?;
    let outs = results
        .iter()
        .map(|pr| pr.take().expect("rank finished without a result"))
        .collect();
    Ok((outs, report))
}

/// [`run_sim_cluster`] on the stackless kernel: every rank is an `async`
/// body suspended into the event heap instead of a parked OS thread, so the
/// cluster scales to tens of thousands of ranks on one thread.
///
/// `f` is called once per rank (at spawn time, on the calling thread) to
/// build that rank's future; the body itself first executes when the kernel
/// grants time zero. With the same models and workload this produces the
/// same schedule — bit for bit — as [`run_sim_cluster`].
///
/// # Example
///
/// ```
/// use mpk::{run_sim_proc_cluster, AsyncTransport, Tag, Rank};
/// use netsim::{ClusterSpec, ConstantLatency, Unloaded};
/// use desim::SimDuration;
///
/// let cluster = ClusterSpec::homogeneous(3, 50.0);
/// let (sums, report) = run_sim_proc_cluster::<u64, _, _, _>(
///     &cluster,
///     ConstantLatency(SimDuration::from_millis(1)),
///     Unloaded,
///     false,
///     |mut t| async move {
///         t.broadcast(Tag(0), t.rank().0 as u64).await;
///         let mut sum = 0;
///         for _ in 0..t.size() - 1 {
///             sum += t.recv().await.msg;
///         }
///         sum
///     },
/// )
/// .unwrap();
/// assert_eq!(sums, vec![3, 2, 1]); // each rank sums the others' ids
/// assert!(report.end_time.as_nanos() > 0);
/// ```
pub fn run_sim_proc_cluster<M, R, F, Fut>(
    cluster: &ClusterSpec,
    net: impl NetworkModel + 'static,
    load: impl LoadModel + 'static,
    trace: bool,
    f: F,
) -> Result<(Vec<R>, SimReport), SimError>
where
    M: WireSize + Clone + Send + 'static,
    R: 'static,
    F: Fn(SimIo<M>) -> Fut,
    Fut: std::future::Future<Output = R> + 'static,
{
    run_sim_proc_cluster_with_faults(cluster, net, load, FaultSpec::none(), trace, f)
}

/// [`run_sim_proc_cluster`] with a fault layer (see
/// [`run_sim_cluster_with_faults`] — identical semantics, stackless ranks).
pub fn run_sim_proc_cluster_with_faults<M, R, F, Fut>(
    cluster: &ClusterSpec,
    net: impl NetworkModel + 'static,
    load: impl LoadModel + 'static,
    faults: FaultSpec<M>,
    trace: bool,
    f: F,
) -> Result<(Vec<R>, SimReport), SimError>
where
    M: WireSize + Clone + Send + 'static,
    R: 'static,
    F: Fn(SimIo<M>) -> Fut,
    Fut: std::future::Future<Output = R> + 'static,
{
    run_sim_proc_cluster_with_options(
        cluster,
        net,
        load,
        faults,
        SimClusterOptions {
            trace,
            ..SimClusterOptions::default()
        },
        f,
    )
}

/// [`run_sim_proc_cluster_with_faults`] with explicit [`SimClusterOptions`].
pub fn run_sim_proc_cluster_with_options<M, R, F, Fut>(
    cluster: &ClusterSpec,
    net: impl NetworkModel + 'static,
    load: impl LoadModel + 'static,
    faults: FaultSpec<M>,
    options: SimClusterOptions,
    f: F,
) -> Result<(Vec<R>, SimReport), SimError>
where
    M: WireSize + Clone + Send + 'static,
    R: 'static,
    F: Fn(SimIo<M>) -> Fut,
    Fut: std::future::Future<Output = R> + 'static,
{
    let mut sim = Simulation::new();
    if options.trace {
        sim.enable_tracing();
    }
    if options.check_scheduling {
        sim.enable_scheduling_checks();
    }
    sim.set_tie_break(options.tie_break);
    let p = cluster.len();
    // Mailboxes created in rank order, so MailboxId(r) == r — the same ids
    // the threaded entry points allocate. Shared by Arc: at 100k ranks a
    // per-rank Vec clone would be O(p²) memory traffic.
    let mailboxes: Arc<Vec<MailboxId>> = Arc::new((0..p).map(|_| sim.create_mailbox()).collect());
    let shared = Arc::new(Mutex::new(SharedNet {
        net: Box::new(net),
        load: Box::new(load),
        faults,
        counters: vec![FaultCounters::default(); p],
        corrupt_salt: 0,
    }));

    let results: Vec<_> = (0..p)
        .map(|r| {
            let machine = cluster.machines()[r];
            let io_mailboxes = Arc::clone(&mailboxes);
            let io_shared = Arc::clone(&shared);
            sim.spawn_async(format!("rank{r}"), |h| {
                f(SimIo {
                    h,
                    rank: Rank(r),
                    size: p,
                    machine,
                    mailboxes: io_mailboxes,
                    shared: io_shared,
                    rec: None,
                })
            })
        })
        .collect();

    let report = sim.run()?;
    let outs = results
        .iter()
        .map(|pr| pr.take().expect("rank finished without a result"))
        .collect();
    Ok((outs, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use desim::SimDuration;
    use netsim::{ConstantLatency, SharedMedium, Unloaded};

    #[test]
    fn all_ranks_see_consistent_identity() {
        let cluster = ClusterSpec::homogeneous(4, 10.0);
        let (ids, _) = run_sim_cluster::<(), _, _>(
            &cluster,
            ConstantLatency(SimDuration::ZERO),
            Unloaded,
            false,
            |t| (t.rank().0, t.size()),
        )
        .unwrap();
        assert_eq!(ids, vec![(0, 4), (1, 4), (2, 4), (3, 4)]);
    }

    #[test]
    fn compute_time_reflects_machine_speed() {
        // Two machines, 100 and 10 MIPS; both do 1M ops.
        let cluster = ClusterSpec::new(vec![MachineSpec::new(100.0), MachineSpec::new(10.0)]);
        let (times, report) = run_sim_cluster::<(), _, _>(
            &cluster,
            ConstantLatency(SimDuration::ZERO),
            Unloaded,
            false,
            |t| {
                t.compute(1_000_000);
                t.now().as_nanos()
            },
        )
        .unwrap();
        assert_eq!(times[0], 10_000_000); // 10 ms on the fast machine
        assert_eq!(times[1], 100_000_000); // 100 ms on the slow machine
        assert_eq!(report.end_time.as_nanos(), 100_000_000);
    }

    #[test]
    fn broadcast_reaches_everyone() {
        let cluster = ClusterSpec::homogeneous(5, 10.0);
        let (got, _) = run_sim_cluster::<u64, _, _>(
            &cluster,
            ConstantLatency(SimDuration::from_millis(1)),
            Unloaded,
            false,
            |t| {
                t.broadcast(Tag(7), 100 + t.rank().0 as u64);
                let mut from: Vec<(usize, u64, u32)> = (0..t.size() - 1)
                    .map(|_| {
                        let e = t.recv();
                        (e.src.0, e.msg, e.tag.0)
                    })
                    .collect();
                from.sort();
                from
            },
        )
        .unwrap();
        for (me, msgs) in got.iter().enumerate() {
            let expected: Vec<(usize, u64, u32)> = (0..5)
                .filter(|k| *k != me)
                .map(|k| (k, 100 + k as u64, 7))
                .collect();
            assert_eq!(msgs, &expected);
        }
    }

    #[test]
    fn shared_medium_contention_affects_end_time() {
        // All four ranks blast a 10 KB message at rank 0 at t=0; the bus
        // serializes them. 1 MB/s → each takes ~10 ms of bus time.
        let cluster = ClusterSpec::homogeneous(5, 10.0);
        let run = |bw: f64| {
            let (_, report) = run_sim_cluster::<Vec<u8>, _, _>(
                &cluster,
                SharedMedium::new(SimDuration::ZERO, bw),
                Unloaded,
                false,
                |t| {
                    if t.rank().0 == 0 {
                        for _ in 0..4 {
                            let _ = t.recv();
                        }
                    } else {
                        t.send(Rank(0), Tag(0), vec![0u8; 10_000]);
                    }
                },
            )
            .unwrap();
            report.end_time.as_secs_f64()
        };
        let slow = run(1e6);
        let fast = run(1e8);
        assert!(slow > 4.0 * 9e-3, "bus must serialize: {slow}");
        assert!(fast < slow / 10.0, "faster bus must shrink the run");
    }

    #[test]
    fn determinism_of_full_cluster_run() {
        let run = || {
            let cluster = ClusterSpec::paper_model_example();
            let (outs, report) = run_sim_cluster::<(u64, f64), _, _>(
                &cluster,
                SharedMedium::new(SimDuration::from_micros(200), 1.25e6),
                Unloaded,
                false,
                |t| {
                    let mut acc = 0.0f64;
                    for round in 0..5u64 {
                        t.broadcast(Tag(0), (round, t.rank().0 as f64));
                        for _ in 0..t.size() - 1 {
                            acc += t.recv().msg.1;
                        }
                        t.compute(10_000);
                    }
                    (t.now().as_nanos(), acc)
                },
            )
            .unwrap();
            (outs, report.end_time)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn total_loss_drops_every_send_and_counts_them() {
        use netsim::Loss;
        let cluster = ClusterSpec::homogeneous(2, 10.0);
        let (got, _) = run_sim_cluster_with_faults::<u64, _, _>(
            &cluster,
            ConstantLatency(SimDuration::from_millis(1)),
            Unloaded,
            FaultSpec::new(Loss::new(1.0, 1)),
            false,
            |t| {
                if t.rank().0 == 0 {
                    for i in 0..10 {
                        t.send(Rank(1), Tag(0), i);
                    }
                    t.fault_counters().dropped
                } else {
                    // Every send was swallowed: the wait must time out.
                    match t.recv_timeout(SimDuration::from_millis(50)) {
                        Some(_) => 99,
                        None => 0,
                    }
                }
            },
        )
        .unwrap();
        assert_eq!(got, vec![10, 0]);
    }

    #[test]
    fn duplication_delivers_extra_copies() {
        use netsim::Duplicate;
        let cluster = ClusterSpec::homogeneous(2, 10.0);
        let (got, _) = run_sim_cluster_with_faults::<u64, _, _>(
            &cluster,
            ConstantLatency(SimDuration::from_millis(1)),
            Unloaded,
            FaultSpec::new(Duplicate::new(1.0, 3)),
            false,
            |t| {
                if t.rank().0 == 0 {
                    t.send(Rank(1), Tag(0), 7);
                    t.fault_counters().duplicated
                } else {
                    let a = t.recv().msg;
                    let b = t
                        .recv_timeout(SimDuration::from_millis(20))
                        .map(|e| e.msg)
                        .unwrap_or(0);
                    let none_after = t.recv_timeout(SimDuration::from_millis(20)).is_none();
                    assert!(none_after, "exactly two copies expected");
                    a + b
                }
            },
        )
        .unwrap();
        assert_eq!(got, vec![1, 14]);
    }

    #[test]
    fn sends_to_a_crashed_destination_are_lost() {
        use netsim::MachineCrash;
        let cluster = ClusterSpec::homogeneous(2, 10.0);
        let crashes = CrashPlan::new(vec![MachineCrash {
            rank: 1,
            at: SimTime::ZERO,
            restart_after: SimDuration::from_millis(10),
        }]);
        let (got, _) = run_sim_cluster_with_faults::<u64, _, _>(
            &cluster,
            ConstantLatency(SimDuration::from_millis(1)),
            Unloaded,
            FaultSpec::<u64>::none().with_crashes(crashes),
            false,
            |t| {
                if t.rank().0 == 0 {
                    t.send(Rank(1), Tag(0), 1); // rank 1 is down: lost
                    t.sleep(SimDuration::from_millis(20));
                    t.send(Rank(1), Tag(0), 2); // back up: delivered
                    t.fault_counters().dropped
                } else {
                    t.recv().msg
                }
            },
        )
        .unwrap();
        assert_eq!(got, vec![1, 2]);
    }

    #[test]
    fn recv_timeout_expires_exactly_at_the_deadline() {
        let cluster = ClusterSpec::homogeneous(2, 10.0);
        let (got, _) = run_sim_cluster::<u64, _, _>(
            &cluster,
            ConstantLatency(SimDuration::from_millis(1)),
            Unloaded,
            false,
            |t| {
                if t.rank().0 == 0 {
                    let start = t.now();
                    let out = t.recv_timeout(SimDuration::from_millis(7));
                    assert!(out.is_none());
                    (t.now() - start).as_nanos()
                } else {
                    0
                }
            },
        )
        .unwrap();
        assert_eq!(got[0], 7_000_000);
    }

    #[test]
    fn recv_timeout_wakes_at_the_exact_arrival_time() {
        // Event-driven wait: the receiver must observe the message at its
        // delivery instant (1 ms), not rounded up to a polling quantum of
        // the 50 ms timeout.
        let cluster = ClusterSpec::homogeneous(2, 10.0);
        let (got, _) = run_sim_cluster::<u64, _, _>(
            &cluster,
            ConstantLatency(SimDuration::from_millis(1)),
            Unloaded,
            false,
            |t| {
                if t.rank().0 == 0 {
                    t.send(Rank(1), Tag(0), 42);
                    0
                } else {
                    let start = t.now();
                    let env = t
                        .recv_timeout(SimDuration::from_millis(50))
                        .expect("message should arrive before the timeout");
                    assert_eq!(env.msg, 42);
                    (t.now() - start).as_nanos()
                }
            },
        )
        .unwrap();
        assert_eq!(got[1], 1_000_000);
    }

    #[test]
    fn recv_timeout_handles_sub_quantum_timeouts_exactly() {
        // 10 ns is far below what any polling quantum could resolve; the
        // single-timer wait must still expire at exactly 10 ns.
        let cluster = ClusterSpec::homogeneous(1, 10.0);
        let (got, _) = run_sim_cluster::<u64, _, _>(
            &cluster,
            ConstantLatency(SimDuration::from_millis(1)),
            Unloaded,
            false,
            |t| {
                let start = t.now();
                assert!(t.recv_timeout(SimDuration::from_nanos(10)).is_none());
                (t.now() - start).as_nanos()
            },
        )
        .unwrap();
        assert_eq!(got[0], 10);
    }

    #[test]
    fn recv_timeout_zero_degrades_to_try_recv() {
        let cluster = ClusterSpec::homogeneous(2, 10.0);
        let (got, _) = run_sim_cluster::<u64, _, _>(
            &cluster,
            ConstantLatency(SimDuration::from_millis(1)),
            Unloaded,
            false,
            |t| {
                if t.rank().0 == 0 {
                    t.send(Rank(1), Tag(0), 9);
                    true
                } else {
                    t.sleep(SimDuration::from_millis(5)); // message is now waiting
                    let first = t.recv_timeout(SimDuration::ZERO).map(|e| e.msg);
                    assert_eq!(first, Some(9));
                    let before = t.now();
                    let second = t.recv_timeout(SimDuration::ZERO);
                    // Empty mailbox + zero timeout: no wait, no time passes.
                    second.is_none() && t.now() == before
                }
            },
        )
        .unwrap();
        assert!(got[1]);
    }

    #[test]
    fn no_faults_run_matches_plain_run_bit_for_bit() {
        let run = |with_faults: bool| {
            let cluster = ClusterSpec::paper_model_example();
            let body = |t: &mut SimTransport<'_, '_, (u64, f64)>| {
                let mut acc = 0.0f64;
                for round in 0..5u64 {
                    t.broadcast(Tag(0), (round, t.rank().0 as f64));
                    for _ in 0..t.size() - 1 {
                        acc += t.recv().msg.1;
                    }
                    t.compute(10_000);
                }
                (t.now().as_nanos(), acc)
            };
            let net = SharedMedium::new(SimDuration::from_micros(200), 1.25e6);
            let (outs, report) = if with_faults {
                run_sim_cluster_with_faults::<(u64, f64), _, _>(
                    &cluster,
                    net,
                    Unloaded,
                    FaultSpec::none(),
                    false,
                    body,
                )
                .unwrap()
            } else {
                run_sim_cluster::<(u64, f64), _, _>(&cluster, net, Unloaded, false, body).unwrap()
            };
            (outs, report.end_time)
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn default_options_match_plain_faulted_run_bit_for_bit() {
        let body = |t: &mut SimTransport<'_, '_, (u64, f64)>| {
            let mut acc = 0.0f64;
            for round in 0..4u64 {
                t.broadcast(Tag(0), (round, t.rank().0 as f64));
                for _ in 0..t.size() - 1 {
                    acc += t.recv().msg.1;
                }
                t.compute(5_000);
            }
            (t.now().as_nanos(), acc)
        };
        let run = |with_options: bool| {
            let cluster = ClusterSpec::homogeneous(4, 10.0);
            let net = SharedMedium::new(SimDuration::from_micros(100), 2e6);
            let (outs, report) = if with_options {
                run_sim_cluster_with_options::<(u64, f64), _, _>(
                    &cluster,
                    net,
                    Unloaded,
                    FaultSpec::none(),
                    SimClusterOptions::default(),
                    body,
                )
                .unwrap()
            } else {
                run_sim_cluster_with_faults::<(u64, f64), _, _>(
                    &cluster,
                    net,
                    Unloaded,
                    FaultSpec::none(),
                    false,
                    body,
                )
                .unwrap()
            };
            (outs, report.end_time)
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn seeded_tiebreak_runs_are_reproducible() {
        let run = |salt: u64| {
            let cluster = ClusterSpec::homogeneous(4, 10.0);
            let (outs, report) = run_sim_cluster_with_options::<u64, _, _>(
                &cluster,
                ConstantLatency(SimDuration::from_millis(1)),
                Unloaded,
                FaultSpec::none(),
                SimClusterOptions {
                    tie_break: TieBreak::Seeded(salt),
                    ..SimClusterOptions::default()
                },
                |t| {
                    // Every rank broadcasts at t=0: all deliveries are
                    // simultaneous, so the tie-break decides their order.
                    t.broadcast(Tag(0), t.rank().0 as u64);
                    (0..t.size() - 1).map(|_| t.recv().msg).sum::<u64>()
                },
            )
            .unwrap();
            (outs, report.end_time)
        };
        assert_eq!(run(3), run(3), "same salt must reproduce exactly");
        // Sums are order-independent, so even reordered deliveries agree.
        assert_eq!(run(3).0, run(4).0);
    }

    #[test]
    fn stackless_cluster_matches_threaded_bit_for_bit() {
        // The same workload — broadcasts, contended medium, compute, timed
        // receives — on the threaded and the stackless kernel must produce
        // identical results, end times, and kernel counters.
        let cluster = ClusterSpec::paper_model_example();
        let net = || SharedMedium::new(SimDuration::from_micros(200), 1.25e6);
        let threaded = run_sim_cluster::<(u64, f64), _, _>(
            &cluster,
            net(),
            Unloaded,
            false,
            |t: &mut SimTransport<'_, '_, (u64, f64)>| {
                let mut acc = 0.0f64;
                for round in 0..5u64 {
                    t.broadcast(Tag(0), (round, t.rank().0 as f64));
                    for _ in 0..t.size() - 1 {
                        acc += t.recv().msg.1;
                    }
                    t.compute(10_000);
                }
                // All messages are consumed: this exercises the timer path
                // and must expire at exactly +50 us on both kernels.
                assert!(t.recv_timeout(SimDuration::from_micros(50)).is_none());
                (t.now().as_nanos(), acc)
            },
        )
        .unwrap();
        let stackless = run_sim_proc_cluster::<(u64, f64), _, _, _>(
            &cluster,
            net(),
            Unloaded,
            false,
            |mut t| async move {
                use crate::transport::AsyncTransport;
                let mut acc = 0.0f64;
                for round in 0..5u64 {
                    t.broadcast(Tag(0), (round, t.rank().0 as f64)).await;
                    for _ in 0..t.size() - 1 {
                        acc += t.recv().await.msg.1;
                    }
                    t.compute(10_000).await;
                }
                assert!(t.recv_timeout(SimDuration::from_micros(50)).await.is_none());
                (t.now().as_nanos(), acc)
            },
        )
        .unwrap();
        assert_eq!(threaded.0, stackless.0);
        assert_eq!(threaded.1, stackless.1);
    }

    #[test]
    fn stackless_cluster_supports_faults_and_scheduling_checks() {
        use netsim::Loss;
        let cluster = ClusterSpec::homogeneous(2, 10.0);
        let (got, _) = run_sim_proc_cluster_with_options::<u64, _, _, _>(
            &cluster,
            ConstantLatency(SimDuration::from_millis(1)),
            Unloaded,
            FaultSpec::new(Loss::new(1.0, 1)),
            SimClusterOptions {
                check_scheduling: true,
                ..SimClusterOptions::default()
            },
            |mut t| async move {
                use crate::transport::AsyncTransport;
                if t.rank().0 == 0 {
                    for i in 0..10 {
                        t.send(Rank(1), Tag(0), i).await;
                    }
                    t.fault_counters().dropped
                } else {
                    match t.recv_timeout(SimDuration::from_millis(50)).await {
                        Some(_) => 99,
                        None => 0,
                    }
                }
            },
        )
        .unwrap();
        assert_eq!(got, vec![10, 0]);
    }

    #[test]
    fn rank_closure_error_propagates() {
        let cluster = ClusterSpec::homogeneous(2, 10.0);
        let res = run_sim_cluster::<(), _, _>(
            &cluster,
            ConstantLatency(SimDuration::ZERO),
            Unloaded,
            false,
            |t| {
                if t.rank().0 == 1 {
                    panic!("rank 1 exploded");
                }
                t.recv(); // rank 0 waits forever
            },
        );
        match res {
            Err(SimError::ProcessPanicked { name, message }) => {
                assert_eq!(name, "rank1");
                assert!(message.contains("exploded"));
            }
            other => panic!("expected panic, got {:?}", other.map(|(r, _)| r)),
        }
    }
}
