//! Deterministic jittered exponential backoff for reconnect loops.
//!
//! Retry loops in the socket backend (dial-time [`connect_with_retry`],
//! supervisor reconnects) share this schedule: the raw delay doubles from a
//! configurable base up to a cap, each delay is jittered into the
//! `[raw/2, raw)` window by a seeded xorshift stream so simultaneous
//! reconnecting peers de-synchronize, and the whole loop is bounded by a
//! total deadline rather than a retry count.
//!
//! Everything is deterministic per seed: the same `(base, cap, seed)` always
//! produces the same delay sequence, which keeps kill/restart chaos tests
//! replayable.
//!
//! [`connect_with_retry`]: crate::SocketTransport

use std::time::Duration;

/// A deterministic jittered exponential backoff schedule.
///
/// Yields successive delays via [`Backoff::next_delay`]; the caller sleeps
/// between attempts and stops when its own total deadline passes.
#[derive(Clone, Debug)]
pub struct Backoff {
    base: Duration,
    cap: Duration,
    attempt: u32,
    rng: u64,
}

impl Backoff {
    /// A schedule starting at `base`, doubling up to `cap`, jittered by a
    /// stream seeded with `seed`.
    pub fn new(base: Duration, cap: Duration, seed: u64) -> Self {
        Backoff {
            base: base.max(Duration::from_micros(1)),
            cap: cap.max(base),
            attempt: 0,
            // splitmix64 finalizer so nearby seeds (e.g. consecutive ranks)
            // give unrelated jitter streams.
            rng: {
                let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            },
        }
    }

    /// Number of delays handed out so far.
    pub fn attempts(&self) -> u32 {
        self.attempt
    }

    fn next_u64(&mut self) -> u64 {
        // xorshift64*: tiny, seedable, plenty for jitter.
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// The next delay to sleep before retrying: `min(cap, base · 2^n)`
    /// jittered uniformly into `[raw/2, raw)`.
    pub fn next_delay(&mut self) -> Duration {
        let exp = self.attempt.min(32);
        self.attempt = self.attempt.saturating_add(1);
        let raw = self
            .base
            .saturating_mul(1u32.checked_shl(exp).unwrap_or(u32::MAX))
            .min(self.cap);
        let raw_ns = raw.as_nanos().min(u64::MAX as u128) as u64;
        let half = raw_ns / 2;
        let jitter = if half == 0 { 0 } else { self.next_u64() % half };
        Duration::from_nanos(half + jitter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_double_until_the_cap() {
        let mut b = Backoff::new(Duration::from_millis(10), Duration::from_millis(80), 7);
        let raws: Vec<u64> = (0..6).map(|_| b.next_delay().as_nanos() as u64).collect();
        // Each jittered delay lives in [raw/2, raw) of its doubling step.
        let expect_ms = [10u64, 20, 40, 80, 80, 80];
        for (d, ms) in raws.iter().zip(expect_ms) {
            let raw = ms * 1_000_000;
            assert!(
                *d >= raw / 2 && *d < raw,
                "delay {d}ns outside [{}/2, {})",
                raw,
                raw
            );
        }
    }

    #[test]
    fn same_seed_reproduces_the_schedule() {
        let seq = |seed| {
            let mut b = Backoff::new(Duration::from_millis(5), Duration::from_secs(1), seed);
            (0..8).map(|_| b.next_delay()).collect::<Vec<_>>()
        };
        assert_eq!(seq(42), seq(42));
        assert_ne!(seq(42), seq(43), "different seeds should jitter apart");
    }

    #[test]
    fn zero_base_is_clamped_not_divided_by_zero() {
        let mut b = Backoff::new(Duration::ZERO, Duration::ZERO, 1);
        for _ in 0..4 {
            let d = b.next_delay();
            assert!(d <= Duration::from_micros(1));
        }
    }

    #[test]
    fn huge_attempt_counts_saturate_at_the_cap() {
        let mut b = Backoff::new(Duration::from_millis(1), Duration::from_millis(50), 3);
        for _ in 0..100 {
            let d = b.next_delay();
            assert!(d < Duration::from_millis(50));
        }
        assert_eq!(b.attempts(), 100);
    }
}
