//! # mpk — a message-passing kernel in the spirit of PVM
//!
//! The paper's experiments run "under the PVM programming environment using
//! the message passing paradigm" on a network of workstations. Rust's MPI
//! story is thin, so this crate provides the message-passing substrate from
//! scratch: a small [`Transport`] trait (identity, async send, blocking and
//! non-blocking receive, charged computation, a clock) with two
//! interchangeable backends:
//!
//! * [`run_sim_cluster`] / [`SimTransport`] — ranks are processes of the
//!   [`desim`] virtual-time kernel on a [`netsim`] cluster: deterministic,
//!   seedable, instantaneous. All quantitative experiments use this.
//! * [`run_thread_cluster`] / [`ThreadTransport`] — ranks are real OS
//!   threads exchanging messages through in-process mailboxes with
//!   optionally injected latency: the live "channel-based port".
//! * [`run_socket_cluster`] / [`SocketTransport`] — ranks are processes
//!   (or loopback threads) exchanging length-prefixed frames over a full
//!   mesh of real TCP sockets: delay and disconnects come from the
//!   kernel's network stack, not a model.
//!
//! Algorithms written once against [`Transport`] run on all three.

#![warn(missing_docs)]

mod backoff;
mod codec;
mod delta;
mod sim;
mod socket;
mod threads;
mod transport;
mod types;

pub use backoff::Backoff;
pub use codec::{decode_exact, encode_to_vec, encoded_len_matches_wire_size, WireCodec};
pub use delta::DeltaFrame;
pub use sim::{
    run_sim_cluster, run_sim_cluster_with_faults, run_sim_cluster_with_options,
    run_sim_proc_cluster, run_sim_proc_cluster_with_faults, run_sim_proc_cluster_with_options,
    Corruptor, FaultSpec, SimClusterOptions, SimIo, SimTransport,
};
pub use socket::{
    connect_socket_cluster, connect_socket_cluster_with_faults, rejoin_socket_cluster,
    run_socket_cluster, run_socket_cluster_with_faults, SocketClusterOptions, SocketTransport,
    SupervisionCounters, SupervisorOptions, DEFAULT_MAX_FRAME, FRAME_OVERHEAD, KIND_DATA,
    KIND_GOODBYE, KIND_HEARTBEAT, KIND_HELLO, KIND_RESUME, WIRE_VERSION,
};
pub use threads::{
    run_thread_cluster, run_thread_cluster_with_fault_spec, run_thread_cluster_with_faults,
    ThreadClusterOptions, ThreadTransport,
};
pub use transport::{AsyncTransport, Transport};
pub use types::{Envelope, FaultCounters, Rank, Tag, WireSize, HEADER_BYTES};

#[cfg(test)]
mod tests {
    use super::*;
    use desim::SimDuration;
    use netsim::{ClusterSpec, ConstantLatency, Unloaded};

    /// The same all-reduce runs on both backends and produces identical
    /// payload-level results.
    #[test]
    fn backends_agree_on_message_contents() {
        fn allreduce<T: Transport<Msg = u64>>(t: &mut T) -> u64 {
            t.broadcast(Tag(0), t.rank().0 as u64 + 1);
            let mut acc = t.rank().0 as u64 + 1;
            for _ in 0..t.size() - 1 {
                acc += t.recv().msg;
            }
            acc
        }

        let cluster = ClusterSpec::homogeneous(4, 100.0);
        let (sim_out, _) = run_sim_cluster::<u64, _, _>(
            &cluster,
            ConstantLatency(SimDuration::from_micros(10)),
            Unloaded,
            false,
            |t| allreduce(t),
        )
        .unwrap();
        let thread_out =
            run_thread_cluster::<u64, _, _>(4, ThreadClusterOptions::default(), allreduce);

        assert_eq!(sim_out, thread_out);
        assert!(sim_out.iter().all(|&s| s == 1 + 2 + 3 + 4));
    }
}
