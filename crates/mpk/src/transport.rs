//! The [`Transport`] abstraction every algorithm in this workspace runs on.
//!
//! A transport gives a process its identity (`rank`/`size`), asynchronous
//! sends, blocking and non-blocking receives, a way to *charge* computation
//! (so cost models apply uniformly), and a clock. Algorithms written against
//! `Transport` run unchanged on the deterministic virtual-time backend
//! ([`SimTransport`](crate::SimTransport)) used for the paper's experiments
//! and on the real-thread backend
//! ([`ThreadTransport`](crate::ThreadTransport)).

use desim::{SimDuration, SimTime};
use obs::Recorder;

use crate::types::{Envelope, FaultCounters, Rank, Tag};

/// A process's connection to its peers.
pub trait Transport {
    /// Message payload type.
    type Msg: Send + 'static;

    /// This process's rank, in `0..size`.
    fn rank(&self) -> Rank;

    /// Number of cooperating processes.
    fn size(&self) -> usize;

    /// Asynchronously send `msg` to `to`. Never blocks; delivery order
    /// between a fixed (src, dst) pair with equal modelled delays is FIFO.
    fn send(&mut self, to: Rank, tag: Tag, msg: Self::Msg);

    /// Take a message if one has already arrived. Never blocks.
    fn try_recv(&mut self) -> Option<Envelope<Self::Msg>>;

    /// Block until a message arrives and take it.
    fn recv(&mut self) -> Envelope<Self::Msg>;

    /// Block until a message arrives or `timeout` elapses, whichever is
    /// first; `None` on timeout. This is the primitive fault-tolerant
    /// drivers build loss detection on: a bounded wait instead of the
    /// deadlock-prone unconditional [`Transport::recv`].
    ///
    /// The default falls back to the blocking receive (no timeout), which
    /// is correct for fault-free transports where every expected message
    /// eventually arrives. Backends with a fault layer override this.
    fn recv_timeout(&mut self, timeout: SimDuration) -> Option<Envelope<Self::Msg>> {
        let _ = timeout;
        Some(self.recv())
    }

    /// Let `d` pass without computing or receiving — a crashed rank's
    /// outage, not work. The default is a no-op (an instantaneous
    /// transport has nothing to wait on); real backends advance their
    /// clock.
    fn sleep(&mut self, d: SimDuration) {
        let _ = d;
    }

    /// What the fault layer did to this rank's sends so far. All zeros on
    /// transports without a fault layer (the default).
    fn fault_counters(&self) -> FaultCounters {
        FaultCounters::default()
    }

    /// Perform `ops` operations' worth of computation. On the simulated
    /// backend this advances virtual time by `ops / M_i` (scaled by any
    /// background-load model); on the thread backend it spins real time.
    fn compute(&mut self, ops: u64);

    /// Current time. Virtual on the simulated backend, wall-clock since
    /// cluster start on the thread backend.
    fn now(&self) -> SimTime;

    /// Tell the transport how far this rank's computation has advanced
    /// (highest confirmed iteration). Backends with a resume handshake
    /// report it to peers that reconnect; everywhere else it is a no-op.
    fn note_progress(&mut self, iter: u64) {
        let _ = iter;
    }

    /// The structured telemetry sink attached to this endpoint, if any.
    ///
    /// Instrumented code emits with `if let Some(r) = t.recorder() { … }`,
    /// so the disabled path is a `None` branch: no allocation, no
    /// formatting, no timing perturbation. Backends that support telemetry
    /// override this; the default is permanently disabled.
    fn recorder(&mut self) -> Option<&mut (dyn Recorder + 'static)> {
        None
    }

    /// Send `msg` to every other rank (requires `Msg: Clone`).
    fn broadcast(&mut self, tag: Tag, msg: Self::Msg)
    where
        Self::Msg: Clone,
    {
        let me = self.rank();
        let n = self.size();
        for k in 0..n {
            if k != me.0 {
                self.send(Rank(k), tag, msg.clone());
            }
        }
    }
}
