//! The [`Transport`] abstraction every algorithm in this workspace runs on.
//!
//! A transport gives a process its identity (`rank`/`size`), asynchronous
//! sends, blocking and non-blocking receives, a way to *charge* computation
//! (so cost models apply uniformly), and a clock. Algorithms written against
//! `Transport` run unchanged on the deterministic virtual-time backend
//! ([`SimTransport`](crate::SimTransport)) used for the paper's experiments
//! and on the real-thread backend
//! ([`ThreadTransport`](crate::ThreadTransport)).

use desim::{SimDuration, SimTime};
use obs::Recorder;

use crate::types::{Envelope, FaultCounters, Rank, Tag};

/// A process's connection to its peers.
pub trait Transport {
    /// Message payload type.
    type Msg: Send + 'static;

    /// This process's rank, in `0..size`.
    fn rank(&self) -> Rank;

    /// Number of cooperating processes.
    fn size(&self) -> usize;

    /// Asynchronously send `msg` to `to`. Never blocks; delivery order
    /// between a fixed (src, dst) pair with equal modelled delays is FIFO.
    fn send(&mut self, to: Rank, tag: Tag, msg: Self::Msg);

    /// Take a message if one has already arrived. Never blocks.
    fn try_recv(&mut self) -> Option<Envelope<Self::Msg>>;

    /// Block until a message arrives and take it.
    fn recv(&mut self) -> Envelope<Self::Msg>;

    /// Block until a message arrives or `timeout` elapses, whichever is
    /// first; `None` on timeout. This is the primitive fault-tolerant
    /// drivers build loss detection on: a bounded wait instead of the
    /// deadlock-prone unconditional [`Transport::recv`].
    ///
    /// The default falls back to the blocking receive (no timeout), which
    /// is correct for fault-free transports where every expected message
    /// eventually arrives. Backends with a fault layer override this.
    fn recv_timeout(&mut self, timeout: SimDuration) -> Option<Envelope<Self::Msg>> {
        let _ = timeout;
        Some(self.recv())
    }

    /// Let `d` pass without computing or receiving — a crashed rank's
    /// outage, not work. The default is a no-op (an instantaneous
    /// transport has nothing to wait on); real backends advance their
    /// clock.
    fn sleep(&mut self, d: SimDuration) {
        let _ = d;
    }

    /// What the fault layer did to this rank's sends so far. All zeros on
    /// transports without a fault layer (the default).
    fn fault_counters(&self) -> FaultCounters {
        FaultCounters::default()
    }

    /// Perform `ops` operations' worth of computation. On the simulated
    /// backend this advances virtual time by `ops / M_i` (scaled by any
    /// background-load model); on the thread backend it spins real time.
    fn compute(&mut self, ops: u64);

    /// Current time. Virtual on the simulated backend, wall-clock since
    /// cluster start on the thread backend.
    fn now(&self) -> SimTime;

    /// Tell the transport how far this rank's computation has advanced
    /// (highest confirmed iteration). Backends with a resume handshake
    /// report it to peers that reconnect; everywhere else it is a no-op.
    fn note_progress(&mut self, iter: u64) {
        let _ = iter;
    }

    /// The structured telemetry sink attached to this endpoint, if any.
    ///
    /// Instrumented code emits with `if let Some(r) = t.recorder() { … }`,
    /// so the disabled path is a `None` branch: no allocation, no
    /// formatting, no timing perturbation. Backends that support telemetry
    /// override this; the default is permanently disabled.
    fn recorder(&mut self) -> Option<&mut (dyn Recorder + 'static)> {
        None
    }

    /// Send `msg` to every other rank (requires `Msg: Clone`).
    fn broadcast(&mut self, tag: Tag, msg: Self::Msg)
    where
        Self::Msg: Clone,
    {
        let me = self.rank();
        let n = self.size();
        for k in 0..n {
            if k != me.0 {
                self.send(Rank(k), tag, msg.clone());
            }
        }
    }
}

/// The `async` twin of [`Transport`]: same operations, same contracts, but
/// potentially-blocking calls are `async fn`s.
///
/// This is the single interface the algorithm layer is written against
/// (`speccore::run_speculative_aio`). It has two kinds of implementors:
///
/// * every blocking [`Transport`] — via the blanket impl below, whose
///   futures resolve on first poll because the underlying calls block
///   inline. Polling such a future once can therefore never return
///   `Pending`, which is what lets the sync entry points drive an async
///   driver to completion without an executor.
/// * [`SimIo`](crate::SimIo) — the stackless virtual-time endpoint, whose
///   futures suspend into the `desim` event kernel. Thousands of ranks
///   share one OS thread.
///
/// Non-`async` methods (`rank`, `size`, `now`, `fault_counters`,
/// `note_progress`, `recorder`) are identical to [`Transport`]'s and keep
/// the same semantics.
#[allow(async_fn_in_trait)] // single-threaded drivers; no Send bound wanted
pub trait AsyncTransport {
    /// Message payload type.
    type Msg: Send + 'static;

    /// This process's rank, in `0..size`.
    fn rank(&self) -> Rank;

    /// Number of cooperating processes.
    fn size(&self) -> usize;

    /// Asynchronously send `msg` to `to`. Resolves without virtual time
    /// passing for the sender; delivery order between a fixed (src, dst)
    /// pair with equal modelled delays is FIFO.
    async fn send(&mut self, to: Rank, tag: Tag, msg: Self::Msg);

    /// Take a message if one has already arrived. Never waits.
    async fn try_recv(&mut self) -> Option<Envelope<Self::Msg>>;

    /// Wait until a message arrives and take it.
    async fn recv(&mut self) -> Envelope<Self::Msg>;

    /// Wait until a message arrives or `timeout` elapses, whichever is
    /// first; `None` on timeout. Same contract as
    /// [`Transport::recv_timeout`], including the default fallback to the
    /// unbounded receive on fault-free transports.
    async fn recv_timeout(&mut self, timeout: SimDuration) -> Option<Envelope<Self::Msg>> {
        let _ = timeout;
        Some(self.recv().await)
    }

    /// Let `d` pass without computing or receiving. Default: no-op.
    async fn sleep(&mut self, d: SimDuration) {
        let _ = d;
    }

    /// What the fault layer did to this rank's sends so far. All zeros on
    /// transports without a fault layer (the default).
    fn fault_counters(&self) -> FaultCounters {
        FaultCounters::default()
    }

    /// Perform `ops` operations' worth of computation.
    async fn compute(&mut self, ops: u64);

    /// Current time.
    fn now(&self) -> SimTime;

    /// Report this rank's progress (highest confirmed iteration) to
    /// backends with a resume handshake. Default: no-op.
    fn note_progress(&mut self, iter: u64) {
        let _ = iter;
    }

    /// The structured telemetry sink attached to this endpoint, if any.
    fn recorder(&mut self) -> Option<&mut (dyn Recorder + 'static)> {
        None
    }

    /// Send `msg` to every other rank in ascending rank order (requires
    /// `Msg: Clone`).
    async fn broadcast(&mut self, tag: Tag, msg: Self::Msg)
    where
        Self::Msg: Clone,
    {
        let me = self.rank();
        let n = self.size();
        for k in 0..n {
            if k != me.0 {
                self.send(Rank(k), tag, msg.clone()).await;
            }
        }
    }
}

/// Every blocking [`Transport`] is an [`AsyncTransport`] whose futures
/// resolve on first poll. Every method — including the ones `Transport`
/// defaults — delegates explicitly (via UFCS, so there is no accidental
/// recursion into this impl), which guarantees a backend's overrides of
/// `recv_timeout`/`sleep`/`fault_counters`/`broadcast`/… are honoured.
impl<T: Transport> AsyncTransport for T {
    type Msg = T::Msg;

    fn rank(&self) -> Rank {
        Transport::rank(self)
    }

    fn size(&self) -> usize {
        Transport::size(self)
    }

    async fn send(&mut self, to: Rank, tag: Tag, msg: Self::Msg) {
        Transport::send(self, to, tag, msg);
    }

    async fn try_recv(&mut self) -> Option<Envelope<Self::Msg>> {
        Transport::try_recv(self)
    }

    async fn recv(&mut self) -> Envelope<Self::Msg> {
        Transport::recv(self)
    }

    async fn recv_timeout(&mut self, timeout: SimDuration) -> Option<Envelope<Self::Msg>> {
        Transport::recv_timeout(self, timeout)
    }

    async fn sleep(&mut self, d: SimDuration) {
        Transport::sleep(self, d);
    }

    fn fault_counters(&self) -> FaultCounters {
        Transport::fault_counters(self)
    }

    async fn compute(&mut self, ops: u64) {
        Transport::compute(self, ops);
    }

    fn now(&self) -> SimTime {
        Transport::now(self)
    }

    fn note_progress(&mut self, iter: u64) {
        Transport::note_progress(self, iter);
    }

    fn recorder(&mut self) -> Option<&mut (dyn Recorder + 'static)> {
        Transport::recorder(self)
    }

    async fn broadcast(&mut self, tag: Tag, msg: Self::Msg)
    where
        Self::Msg: Clone,
    {
        Transport::broadcast(self, tag, msg);
    }
}
