//! Binary wire codec for the socket transport.
//!
//! The in-process backends move messages as Rust values; the TCP backend
//! ([`crate::SocketTransport`]) has to put them on a real wire. The
//! workspace has no registry access (so no serde/bincode); this module is
//! the small fixed-layout codec the socket framing uses instead:
//! little-endian fixed-width primitives, `u64` length prefixes for
//! variable-length containers — the same layout [`WireSize`] has always
//! *modelled*, now made real.
//!
//! Decoding is total: any input either yields a value consuming a prefix
//! of the buffer or returns `None`. The frame layer drops undecodable
//! payloads (a corrupted frame behaves like a checksum failure: the
//! message is lost, never garbled into a panic).

use crate::types::WireSize;

/// A value that can be encoded onto / decoded from the socket wire.
///
/// Implementations must round-trip: `decode(encode(x)) == x` with the
/// whole encoding consumed. Containers of zero-sized elements (e.g.
/// `Vec<()>`) are not wire-representable — their length cannot be
/// validated against the buffer — and decode as empty.
pub trait WireCodec: Sized {
    /// Append this value's encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Decode a value from the front of `buf`, advancing it past the
    /// bytes consumed. `None` if the buffer does not hold a valid
    /// encoding.
    fn decode(buf: &mut &[u8]) -> Option<Self>;
}

/// Split `n` bytes off the front of `buf`.
fn take<'a>(buf: &mut &'a [u8], n: usize) -> Option<&'a [u8]> {
    if buf.len() < n {
        return None;
    }
    let (head, tail) = buf.split_at(n);
    *buf = tail;
    Some(head)
}

macro_rules! numeric_wire_codec {
    ($($t:ty),*) => {
        $(impl WireCodec for $t {
            fn encode(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn decode(buf: &mut &[u8]) -> Option<Self> {
                let raw = take(buf, std::mem::size_of::<$t>())?;
                Some(<$t>::from_le_bytes(raw.try_into().ok()?))
            }
        })*
    };
}
numeric_wire_codec!(u8, u16, u32, u64, i8, i16, i32, i64, f32, f64);

/// `usize` travels as `u64` so both sides of a connection agree on the
/// layout regardless of pointer width.
impl WireCodec for usize {
    fn encode(&self, out: &mut Vec<u8>) {
        (*self as u64).encode(out);
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        usize::try_from(u64::decode(buf)?).ok()
    }
}

impl WireCodec for isize {
    fn encode(&self, out: &mut Vec<u8>) {
        (*self as i64).encode(out);
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        isize::try_from(i64::decode(buf)?).ok()
    }
}

impl WireCodec for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        match u8::decode(buf)? {
            0 => Some(false),
            1 => Some(true),
            _ => None, // corruption, not a bool
        }
    }
}

impl WireCodec for () {
    fn encode(&self, _out: &mut Vec<u8>) {}
    fn decode(_buf: &mut &[u8]) -> Option<Self> {
        Some(())
    }
}

impl<T: WireCodec> WireCodec for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u64).encode(out);
        for x in self {
            x.encode(out);
        }
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        let len = usize::decode(buf)?;
        // Every wire-representable element consumes ≥ 1 byte, so a
        // length beyond the remaining buffer is corruption — reject it
        // before allocating.
        if len > buf.len() {
            return None;
        }
        let mut v = Vec::with_capacity(len);
        for _ in 0..len {
            v.push(T::decode(buf)?);
        }
        Some(v)
    }
}

impl<T: WireCodec, const N: usize> WireCodec for [T; N] {
    fn encode(&self, out: &mut Vec<u8>) {
        for x in self {
            x.encode(out);
        }
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        let mut v = Vec::with_capacity(N);
        for _ in 0..N {
            v.push(T::decode(buf)?);
        }
        v.try_into().ok()
    }
}

impl<A: WireCodec, B: WireCodec> WireCodec for (A, B) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        Some((A::decode(buf)?, B::decode(buf)?))
    }
}

impl<A: WireCodec, B: WireCodec, C: WireCodec> WireCodec for (A, B, C) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
        self.2.encode(out);
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        Some((A::decode(buf)?, B::decode(buf)?, C::decode(buf)?))
    }
}

impl WireCodec for String {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u64).encode(out);
        out.extend_from_slice(self.as_bytes());
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        let len = usize::decode(buf)?;
        let raw = take(buf, len)?;
        String::from_utf8(raw.to_vec()).ok()
    }
}

/// Like [`WireSize`], an `Arc` is transparent on the wire: the receiver
/// gets its own freshly-allocated copy (sharing is process-local).
impl<T: WireCodec> WireCodec for std::sync::Arc<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        (**self).encode(out);
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        T::decode(buf).map(std::sync::Arc::new)
    }
}

/// Encode `value` into a fresh buffer (convenience for tests and the
/// handshake path; the data path reuses a scratch buffer).
pub fn encode_to_vec<T: WireCodec>(value: &T) -> Vec<u8> {
    let mut out = Vec::with_capacity(value_size_hint(value));
    value.encode(&mut out);
    out
}

fn value_size_hint<T: WireCodec>(_v: &T) -> usize {
    16
}

/// Decode a value that must consume `buf` exactly.
pub fn decode_exact<T: WireCodec>(mut buf: &[u8]) -> Option<T> {
    let v = T::decode(&mut buf)?;
    buf.is_empty().then_some(v)
}

/// Sanity bridge between the model and the wire: for the container and
/// primitive impls above, the real encoding is exactly as long as
/// [`WireSize`] has always claimed. (Asserted in tests; the transports'
/// cost models need only proportionality, but exactness is free here.)
pub fn encoded_len_matches_wire_size<T: WireCodec + WireSize>(value: &T) -> bool {
    encode_to_vec(value).len() == value.wire_size()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: WireCodec + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = encode_to_vec(&v);
        let back: T = decode_exact(&bytes).expect("round trip");
        assert_eq!(back, v);
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(0u8);
        round_trip(u64::MAX);
        round_trip(-5i64);
        round_trip(3.25f64);
        round_trip(f64::NEG_INFINITY);
        round_trip(true);
        round_trip(());
        round_trip(usize::MAX);
    }

    #[test]
    fn nan_round_trips_bit_exactly() {
        let bits = 0x7ff8_0000_dead_beefu64;
        let bytes = encode_to_vec(&f64::from_bits(bits));
        let back: f64 = decode_exact(&bytes).unwrap();
        assert_eq!(back.to_bits(), bits);
    }

    #[test]
    fn containers_round_trip() {
        round_trip(vec![1.0f64, -2.5, 3.75]);
        round_trip(Vec::<f64>::new());
        round_trip("héllo".to_string());
        round_trip([1u32, 2, 3]);
        round_trip((7u64, 2.5f64));
        round_trip((1u8, 2u8, 3u32));
        round_trip(std::sync::Arc::new(vec![1.0f64, 2.0]));
    }

    #[test]
    fn encoded_len_agrees_with_wire_size_model() {
        assert!(encoded_len_matches_wire_size(&3.5f64));
        assert!(encoded_len_matches_wire_size(&vec![1.0f64; 10]));
        assert!(encoded_len_matches_wire_size(&"abc".to_string()));
        assert!(encoded_len_matches_wire_size(&(1u64, 2.0f64)));
        assert!(encoded_len_matches_wire_size(&std::sync::Arc::new(vec![
            0.5f64; 4
        ])));
    }

    #[test]
    fn truncated_input_decodes_to_none() {
        let bytes = encode_to_vec(&vec![1.0f64; 4]);
        for cut in 0..bytes.len() {
            let mut slice = &bytes[..cut];
            assert!(
                Vec::<f64>::decode(&mut slice).is_none(),
                "truncation at {cut} must not decode"
            );
        }
    }

    #[test]
    fn corrupt_length_prefix_is_rejected_without_allocating() {
        let mut bytes = encode_to_vec(&vec![1.0f64; 2]);
        bytes[0..8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(decode_exact::<Vec<f64>>(&bytes).is_none());
    }

    #[test]
    fn non_boolean_byte_is_rejected() {
        assert!(decode_exact::<bool>(&[2]).is_none());
    }

    #[test]
    fn invalid_utf8_is_rejected() {
        let mut bytes = encode_to_vec(&"ab".to_string());
        let n = bytes.len();
        bytes[n - 1] = 0xFF;
        assert!(decode_exact::<String>(&bytes).is_none());
    }
}
