//! Real TCP transport backend: ranks are processes (or threads, in
//! loopback mode) exchanging length-prefixed frames over a full mesh of
//! `std::net` sockets.
//!
//! This is the step the paper's PVM setting takes out of the process:
//! delay, batching, and disconnects come from a real network stack
//! instead of an injected model. The backend keeps the exact receive
//! discipline of [`ThreadTransport`](crate::ThreadTransport) — one
//! per-peer reader thread feeds the same condvar mailbox, so `recv`,
//! `try_recv`, and the event-driven `recv_timeout` behave identically —
//! which is what makes three-way agreement (sim ≡ thread ≡ socket) under
//! exact semantics provable rather than hoped-for.
//!
//! # Wire format
//!
//! Every frame is `[len: u32][version: u8][kind: u8][src: u32][tag: u32]
//! [payload…]`, all little-endian; `len` counts everything after itself.
//! `kind` is [`KIND_HELLO`] during the handshake and [`KIND_DATA`] after;
//! payloads are encoded with [`WireCodec`]. A frame that fails to decode
//! is *dropped*, not surfaced: on a real wire, a corrupt frame is a lost
//! message (the fault-tolerant drivers already treat it exactly like
//! loss).
//!
//! # Handshake
//!
//! Connection establishment is deterministic and rank-ordered: rank `r`
//! dials every lower rank (retrying while peers are still starting) and
//! then accepts one connection from every higher rank, identifying each
//! accepted peer by the `HELLO` frame it must send first. Rank 0 dials
//! no one, so it reaches its accept loop immediately; by induction every
//! dial finds a listening accept loop and the mesh cannot deadlock.
//!
//! # Faults and disconnects
//!
//! [`run_socket_cluster_with_faults`] applies a [`FaultSpec`] at the
//! frame layer of the *sender*: dropped fates are never written,
//! duplicate fates re-write the encoded frame, and corruption either
//! runs the spec's payload corruptor (sim-compatible semantics) or, when
//! none is given, flips a byte of the encoded payload before the write.
//! A peer that disconnects (TCP reset or EOF) is surfaced as a
//! [`Mark::PeerCrashed`] event and the transport keeps working — the
//! reader thread never panics, and bounded waits keep expiring — which
//! feeds the same crash/recovery path the fault-tolerant driver already
//! handles.

use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use desim::{SimDuration, SimTime};
use netsim::{FaultModel, MsgCtx};
use obs::{Mark, Recorder};
use parking_lot::Mutex;

use crate::codec::WireCodec;
use crate::sim::FaultSpec;
use crate::threads::ThreadMailbox;
use crate::transport::Transport;
use crate::types::{Envelope, FaultCounters, Rank, Tag, WireSize, HEADER_BYTES};

/// Wire protocol version carried in every frame header.
pub const WIRE_VERSION: u8 = 1;
/// Handshake frame: `tag` is unused, payload is the sender's cluster size.
pub const KIND_HELLO: u8 = 0;
/// Data frame: `src`/`tag` are the envelope fields, payload a [`WireCodec`]
/// encoding of the message.
pub const KIND_DATA: u8 = 1;
/// Bytes of header inside the length-counted region (version + kind +
/// src + tag).
const FRAME_HEADER: usize = 10;
/// Total framing overhead per message on the wire (length prefix plus
/// header).
pub const FRAME_OVERHEAD: usize = 4 + FRAME_HEADER;
/// Upper bound on a frame's length-prefix; anything larger is treated as
/// a corrupt stream, not an allocation request.
const MAX_FRAME: usize = 256 << 20;

/// Configuration of a socket-backed cluster.
#[derive(Clone, Debug)]
pub struct SocketClusterOptions {
    /// Nominal speed for [`Transport::compute`], in million ops per
    /// second (matches [`ThreadClusterOptions::mips`]
    /// (crate::ThreadClusterOptions::mips)).
    pub mips: f64,
    /// How long a dialing rank retries a peer that is not yet listening
    /// before giving up. Loopback clusters connect instantly; the slack
    /// exists for multi-process starts from separate terminals.
    pub connect_timeout: Duration,
    /// Set `TCP_NODELAY` on every connection. On by default: the
    /// workloads exchange small latency-sensitive frames, exactly the
    /// case Nagle batching hurts.
    pub nodelay: bool,
}

impl Default for SocketClusterOptions {
    fn default() -> Self {
        SocketClusterOptions {
            mips: 1000.0,
            connect_timeout: Duration::from_secs(30),
            nodelay: true,
        }
    }
}

/// What a reader thread delivers into the mailbox: a decoded message or
/// the news that the peer's connection is gone.
enum SocketEvent<M> {
    Data(M),
    PeerGone,
}

/// Shared fault state of a socket cluster (loopback mode shares one
/// across ranks, matching the thread backend; multi-process mode gives
/// each process its own).
struct SocketFaults<M> {
    spec: Mutex<FaultSpec<M>>,
    counters: Mutex<Vec<FaultCounters>>,
    /// Deterministic per-hit counter handed to corruptors.
    salt: AtomicU64,
}

impl<M> SocketFaults<M> {
    fn new(spec: FaultSpec<M>, p: usize) -> Self {
        SocketFaults {
            spec: Mutex::new(spec),
            counters: Mutex::new(vec![FaultCounters::default(); p]),
            salt: AtomicU64::new(0),
        }
    }
}

/// One decoded frame: `(kind, src, tag, payload)`.
type Frame = (u8, u32, u32, Vec<u8>);

/// Read one frame. `Ok(None)` on a clean EOF at a frame boundary; any
/// malformed header is an error (the stream cannot be resynchronized).
fn read_frame(stream: &mut TcpStream) -> std::io::Result<Option<Frame>> {
    let mut len_raw = [0u8; 4];
    match stream.read_exact(&mut len_raw) {
        Ok(()) => {}
        Err(e) if e.kind() == ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len_raw) as usize;
    if !(FRAME_HEADER..=MAX_FRAME).contains(&len) {
        return Err(std::io::Error::new(
            ErrorKind::InvalidData,
            format!("frame length {len} out of bounds"),
        ));
    }
    let mut body = vec![0u8; len];
    stream.read_exact(&mut body)?;
    if body[0] != WIRE_VERSION {
        return Err(std::io::Error::new(
            ErrorKind::InvalidData,
            format!("wire version {} (expected {WIRE_VERSION})", body[0]),
        ));
    }
    let kind = body[1];
    let src = u32::from_le_bytes(body[2..6].try_into().unwrap());
    let tag = u32::from_le_bytes(body[6..10].try_into().unwrap());
    let payload = body.split_off(FRAME_HEADER);
    Ok(Some((kind, src, tag, payload)))
}

/// Encode a frame into `out` (cleared first).
fn encode_frame(out: &mut Vec<u8>, kind: u8, src: u32, tag: u32, payload: &dyn Fn(&mut Vec<u8>)) {
    out.clear();
    out.extend_from_slice(&[0; 4]); // length, patched below
    out.push(WIRE_VERSION);
    out.push(kind);
    out.extend_from_slice(&src.to_le_bytes());
    out.extend_from_slice(&tag.to_le_bytes());
    payload(out);
    let len = (out.len() - 4) as u32;
    out[0..4].copy_from_slice(&len.to_le_bytes());
}

fn write_hello(stream: &mut TcpStream, rank: usize, size: usize) -> std::io::Result<()> {
    let mut frame = Vec::with_capacity(FRAME_OVERHEAD + 4);
    encode_frame(&mut frame, KIND_HELLO, rank as u32, 0, &|out| {
        out.extend_from_slice(&(size as u32).to_le_bytes());
    });
    stream.write_all(&frame)
}

/// Read and validate a `HELLO`, returning the peer's rank.
fn read_hello(stream: &mut TcpStream, size: usize) -> std::io::Result<usize> {
    let (kind, src, _tag, payload) = read_frame(stream)?.ok_or_else(|| {
        std::io::Error::new(ErrorKind::UnexpectedEof, "peer closed during handshake")
    })?;
    let bad = |msg: String| std::io::Error::new(ErrorKind::InvalidData, msg);
    if kind != KIND_HELLO {
        return Err(bad(format!("expected HELLO, got frame kind {kind}")));
    }
    let peer_size = payload
        .get(0..4)
        .map(|b| u32::from_le_bytes(b.try_into().unwrap()) as usize)
        .ok_or_else(|| bad("HELLO payload truncated".into()))?;
    if peer_size != size {
        return Err(bad(format!(
            "peer believes cluster size is {peer_size}, ours is {size}"
        )));
    }
    let peer = src as usize;
    if peer >= size {
        return Err(bad(format!(
            "peer rank {peer} out of range for size {size}"
        )));
    }
    Ok(peer)
}

/// Dial `addr`, retrying while the peer process may still be starting.
fn connect_with_retry(addr: SocketAddr, timeout: Duration) -> std::io::Result<TcpStream> {
    let deadline = Instant::now() + timeout;
    loop {
        match TcpStream::connect(addr) {
            Ok(s) => return Ok(s),
            Err(e) if Instant::now() >= deadline => {
                return Err(std::io::Error::new(
                    ErrorKind::TimedOut,
                    format!("connecting to peer {addr} timed out: {e}"),
                ));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// A rank's endpoint on a socket-backed cluster.
pub struct SocketTransport<M> {
    rank: Rank,
    size: usize,
    opts: SocketClusterOptions,
    /// Write halves of the mesh, by peer rank (`None` for self and for
    /// peers whose connection has failed).
    writers: Vec<Option<TcpStream>>,
    mailbox: Arc<ThreadMailbox<SocketEvent<M>>>,
    epoch: Instant,
    rec: Option<Box<dyn Recorder>>,
    faults: Option<Arc<SocketFaults<M>>>,
    /// Frame bytes actually written to the wire by this rank.
    bytes_sent: u64,
    /// Frame bytes actually read off the wire by this rank's readers.
    bytes_received: Arc<AtomicU64>,
    /// Frames whose payload failed to decode (dropped as corrupt).
    decode_failures: Arc<AtomicU64>,
    /// Peers whose connection has been observed down (crash events
    /// already emitted).
    peer_down: Vec<bool>,
    scratch: Vec<u8>,
}

impl<M: WireCodec + Send + 'static> SocketTransport<M> {
    /// Build a transport from an already-bound listener and the full
    /// address list. `addrs[rank]` must be this process's own listener
    /// address; the call blocks until the full mesh is up.
    fn establish(
        rank: usize,
        listener: TcpListener,
        addrs: &[SocketAddr],
        opts: SocketClusterOptions,
        faults: Option<Arc<SocketFaults<M>>>,
        epoch: Instant,
    ) -> std::io::Result<Self> {
        let size = addrs.len();
        assert!(rank < size, "rank {rank} out of range for {size} addrs");
        let mut conns: Vec<Option<TcpStream>> = (0..size).map(|_| None).collect();

        // Phase 1: dial every lower rank, in rank order.
        for peer in 0..rank {
            let mut s = connect_with_retry(addrs[peer], opts.connect_timeout)?;
            s.set_nodelay(opts.nodelay)?;
            write_hello(&mut s, rank, size)?;
            let replied = read_hello(&mut s, size)?;
            if replied != peer {
                return Err(std::io::Error::new(
                    ErrorKind::InvalidData,
                    format!("dialed rank {peer} but rank {replied} answered"),
                ));
            }
            conns[peer] = Some(s);
        }

        // Phase 2: accept one connection from every higher rank,
        // identified by its HELLO.
        for _ in rank + 1..size {
            let (mut s, _) = listener.accept()?;
            s.set_nodelay(opts.nodelay)?;
            let peer = read_hello(&mut s, size)?;
            if peer <= rank || conns[peer].is_some() {
                return Err(std::io::Error::new(
                    ErrorKind::InvalidData,
                    format!("unexpected HELLO from rank {peer}"),
                ));
            }
            write_hello(&mut s, rank, size)?;
            conns[peer] = Some(s);
        }

        let mailbox = Arc::new(ThreadMailbox::new());
        let bytes_received = Arc::new(AtomicU64::new(0));
        let decode_failures = Arc::new(AtomicU64::new(0));
        for (peer, conn) in conns.iter().enumerate() {
            let Some(conn) = conn else { continue };
            let reader = conn.try_clone()?;
            spawn_reader(
                reader,
                peer,
                Arc::clone(&mailbox),
                Arc::clone(&bytes_received),
                Arc::clone(&decode_failures),
            );
        }

        Ok(SocketTransport {
            rank: Rank(rank),
            size,
            opts,
            writers: conns,
            mailbox,
            epoch,
            rec: None,
            faults,
            bytes_sent: 0,
            bytes_received,
            decode_failures,
            peer_down: vec![false; size],
            scratch: Vec::new(),
        })
    }
}

/// One reader thread per peer connection: read frames, decode, deliver
/// into the shared mailbox. The thread must never panic — every failure
/// mode (EOF, reset, garbage) reduces to either "frame dropped" or
/// "peer gone".
fn spawn_reader<M: WireCodec + Send + 'static>(
    mut stream: TcpStream,
    peer: usize,
    mailbox: Arc<ThreadMailbox<SocketEvent<M>>>,
    bytes_received: Arc<AtomicU64>,
    decode_failures: Arc<AtomicU64>,
) {
    std::thread::spawn(move || {
        loop {
            match read_frame(&mut stream) {
                Ok(Some((kind, src, tag, payload))) => {
                    if kind != KIND_DATA || src as usize != peer {
                        // A frame claiming another origin on a
                        // point-to-point connection is corruption.
                        decode_failures.fetch_add(1, AtomicOrdering::Relaxed);
                        continue;
                    }
                    bytes_received.fetch_add(
                        (FRAME_OVERHEAD + payload.len()) as u64,
                        AtomicOrdering::Relaxed,
                    );
                    match crate::codec::decode_exact::<M>(&payload) {
                        Some(msg) => mailbox.push(
                            Instant::now(),
                            Envelope {
                                src: Rank(peer),
                                tag: Tag(tag),
                                msg: SocketEvent::Data(msg),
                            },
                        ),
                        // Corrupt payload: the frame is lost, exactly
                        // like a datagram failing its checksum.
                        None => {
                            decode_failures.fetch_add(1, AtomicOrdering::Relaxed);
                        }
                    }
                }
                // EOF or connection error: the peer is gone. Deliver the
                // event and exit; pending bounded waits keep expiring and
                // the driver's crash path takes over.
                Ok(None) | Err(_) => {
                    mailbox.push(
                        Instant::now(),
                        Envelope {
                            src: Rank(peer),
                            tag: Tag(0),
                            msg: SocketEvent::PeerGone,
                        },
                    );
                    return;
                }
            }
        }
    });
}

impl<M> SocketTransport<M> {
    /// Attach a structured telemetry sink for this rank (same contract
    /// as [`ThreadTransport::set_recorder`]
    /// (crate::ThreadTransport::set_recorder)).
    pub fn set_recorder(&mut self, rec: Box<dyn Recorder>) {
        self.rec = Some(rec);
    }

    /// How many times this rank's timed receives have blocked on the
    /// mailbox condvar (the zero-spin property carries over from the
    /// thread backend — frames arriving over TCP notify the same
    /// condvar).
    pub fn timed_waits(&self) -> u64 {
        self.mailbox.timed_waits.load(AtomicOrdering::Relaxed)
    }

    /// Actual frame bytes this rank has written to and read from the
    /// wire, including framing overhead: `(sent, received)`.
    pub fn bytes_on_wire(&self) -> (u64, u64) {
        (
            self.bytes_sent,
            self.bytes_received.load(AtomicOrdering::Relaxed),
        )
    }

    /// Frames discarded because their payload failed to decode.
    pub fn decode_failures(&self) -> u64 {
        self.decode_failures.load(AtomicOrdering::Relaxed)
    }

    /// Peers whose TCP connection has been observed down so far.
    pub fn disconnected_peers(&self) -> Vec<Rank> {
        self.peer_down
            .iter()
            .enumerate()
            .filter_map(|(r, down)| down.then_some(Rank(r)))
            .collect()
    }

    fn t_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Record a peer's disconnect exactly once, as the crash-model event
    /// the recovery path consumes.
    fn note_peer_gone(&mut self, peer: Rank) {
        if self.peer_down[peer.0] {
            return;
        }
        self.peer_down[peer.0] = true;
        self.writers[peer.0] = None;
        let t_ns = self.t_ns();
        if let Some(r) = self.rec.as_deref_mut() {
            r.mark(
                self.rank.0 as u32,
                t_ns,
                Mark::PeerCrashed {
                    peer: peer.0 as u32,
                },
            );
        }
    }

    /// Turn a mailbox event into a deliverable envelope, or consume it
    /// as a disconnect notification.
    fn service(&mut self, env: Envelope<SocketEvent<M>>) -> Option<Envelope<M>> {
        match env.msg {
            SocketEvent::Data(msg) => Some(Envelope {
                src: env.src,
                tag: env.tag,
                msg,
            }),
            SocketEvent::PeerGone => {
                self.note_peer_gone(env.src);
                None
            }
        }
    }
}

impl<M: WireCodec + WireSize + Clone + Send + 'static> SocketTransport<M> {
    fn mark_recv(&mut self, env: &Envelope<M>) {
        if let Some(r) = self.rec.as_deref_mut() {
            let bytes = (env.msg.wire_size() + FRAME_OVERHEAD) as u64;
            let t_ns = self.epoch.elapsed().as_nanos() as u64;
            r.mark(
                self.rank.0 as u32,
                t_ns,
                Mark::MsgRecv {
                    from: env.src.0 as u32,
                    bytes,
                },
            );
        }
    }
}

impl<M: WireCodec + WireSize + Clone + Send + 'static> Transport for SocketTransport<M> {
    type Msg = M;

    fn rank(&self) -> Rank {
        self.rank
    }

    fn size(&self) -> usize {
        self.size
    }

    fn send(&mut self, to: Rank, tag: Tag, msg: M) {
        assert!(to.0 < self.size, "send to out-of-range rank {to}");
        assert_ne!(to, self.rank, "self-sends are not modelled");
        // The fault layer reasons in modelled bytes (payload + modelled
        // header), like the other backends; wire marks below use real
        // frame bytes.
        let model_bytes = msg.wire_size() + HEADER_BYTES;
        let t_now = SimTime::from_nanos(self.t_ns());
        let mut extra_copies = 0u32;
        let mut msg = msg;
        let mut flip_salt = None;
        if let Some(fs) = &self.faults {
            let ctx = MsgCtx {
                src: self.rank.0,
                dst: to.0,
                bytes: model_bytes,
                now: t_now,
            };
            let mut spec = fs.spec.lock();
            let mut fate = spec.model.fate(&ctx);
            if spec.crashes.is_down(to.0, t_now) {
                fate.deliver = false;
            }
            if !fate.deliver {
                fs.counters.lock()[self.rank.0].dropped += 1;
                let t_ns = self.t_ns();
                if let Some(r) = self.rec.as_deref_mut() {
                    let rank = self.rank.0 as u32;
                    r.mark(
                        rank,
                        t_ns,
                        Mark::MsgSent {
                            to: to.0 as u32,
                            bytes: model_bytes as u64,
                        },
                    );
                    r.mark(
                        rank,
                        t_ns,
                        Mark::MessageDropped {
                            to: to.0 as u32,
                            bytes: model_bytes as u64,
                        },
                    );
                }
                return;
            }
            {
                let mut counters = fs.counters.lock();
                counters[self.rank.0].delivered += 1;
                counters[self.rank.0].duplicated += u64::from(fate.extra_copies);
            }
            extra_copies = fate.extra_copies;
            if fate.corrupt_amp > 0.0 {
                let salt = fs.salt.fetch_add(1, AtomicOrdering::Relaxed);
                match spec.corruptor.as_mut() {
                    // Payload-aware corruption, identical to the sim
                    // backend's semantics.
                    Some(c) => c(&mut msg, fate.corrupt_amp, salt),
                    // No corruptor: flip one byte of the encoded payload
                    // before the write — frame-layer corruption. The
                    // receiver either decodes a perturbed value or drops
                    // the frame as undecodable.
                    None => flip_salt = Some(salt),
                }
            }
        }

        let mut scratch = std::mem::take(&mut self.scratch);
        encode_frame(&mut scratch, KIND_DATA, self.rank.0 as u32, tag.0, &|out| {
            msg.encode(out)
        });
        if let Some(salt) = flip_salt {
            if scratch.len() > FRAME_OVERHEAD {
                let span = scratch.len() - FRAME_OVERHEAD;
                let idx = FRAME_OVERHEAD + (salt as usize) % span;
                scratch[idx] ^= 0xA5;
            }
        }

        let frame_bytes = scratch.len() as u64;
        let mut wrote = false;
        if let Some(w) = self.writers[to.0].as_mut() {
            let mut ok = true;
            for _ in 0..=extra_copies {
                if let Err(_e) = w.write_all(&scratch) {
                    ok = false;
                    break;
                }
            }
            if ok {
                wrote = true;
                self.bytes_sent += frame_bytes * u64::from(extra_copies + 1);
            }
        }
        self.scratch = scratch;

        let t_ns = self.t_ns();
        if !wrote {
            // The connection is gone (or already marked down): the frame
            // is lost on the floor, like a datagram to a dead host.
            self.note_peer_gone(to);
            if let Some(r) = self.rec.as_deref_mut() {
                r.mark(
                    self.rank.0 as u32,
                    t_ns,
                    Mark::MessageDropped {
                        to: to.0 as u32,
                        bytes: frame_bytes,
                    },
                );
            }
            return;
        }
        if let Some(r) = self.rec.as_deref_mut() {
            let rank = self.rank.0 as u32;
            r.mark(
                rank,
                t_ns,
                Mark::MsgSent {
                    to: to.0 as u32,
                    bytes: frame_bytes,
                },
            );
            if extra_copies > 0 {
                r.mark(
                    rank,
                    t_ns,
                    Mark::MessageDuplicated {
                        to: to.0 as u32,
                        copies: extra_copies,
                    },
                );
            }
        }
    }

    fn try_recv(&mut self) -> Option<Envelope<M>> {
        loop {
            let event = self.mailbox.try_pop()?;
            if let Some(env) = self.service(event) {
                self.mark_recv(&env);
                return Some(env);
            }
        }
    }

    fn recv(&mut self) -> Envelope<M> {
        loop {
            let event = self.mailbox.pop_blocking();
            if let Some(env) = self.service(event) {
                self.mark_recv(&env);
                return env;
            }
        }
    }

    fn recv_timeout(&mut self, timeout: SimDuration) -> Option<Envelope<M>> {
        // Same discipline as the thread backend: one immediate poll, a
        // zero timeout degrades to that poll, then bounded waits to one
        // absolute deadline. Disconnect events consume none of the
        // budget's precision — the wait resumes to the same deadline.
        if let Some(env) = self.try_recv() {
            return Some(env);
        }
        if timeout == SimDuration::ZERO {
            return None;
        }
        let armed = Instant::now();
        let deadline = armed + Duration::from_nanos(timeout.as_nanos());
        loop {
            match self.mailbox.pop_deadline(deadline) {
                None => {
                    let waited_ns = armed.elapsed().as_nanos() as u64;
                    let t_ns = self.t_ns();
                    if let Some(r) = self.rec.as_deref_mut() {
                        r.mark(self.rank.0 as u32, t_ns, Mark::TimerFired { waited_ns });
                    }
                    return None;
                }
                Some(event) => {
                    if let Some(env) = self.service(event) {
                        let waited_ns = armed.elapsed().as_nanos() as u64;
                        let t_ns = self.t_ns();
                        if let Some(r) = self.rec.as_deref_mut() {
                            r.mark(
                                self.rank.0 as u32,
                                t_ns,
                                Mark::RecvWakeup {
                                    from: env.src.0 as u32,
                                    waited_ns,
                                },
                            );
                        }
                        self.mark_recv(&env);
                        return Some(env);
                    }
                }
            }
        }
    }

    fn sleep(&mut self, d: SimDuration) {
        if d > SimDuration::ZERO {
            std::thread::sleep(Duration::from_nanos(d.as_nanos()));
        }
    }

    fn fault_counters(&self) -> FaultCounters {
        self.faults
            .as_ref()
            .map(|fs| fs.counters.lock()[self.rank.0])
            .unwrap_or_default()
    }

    fn compute(&mut self, ops: u64) {
        if ops == 0 {
            return;
        }
        let secs = ops as f64 / (self.opts.mips * 1e6);
        std::thread::sleep(Duration::from_secs_f64(secs));
    }

    fn now(&self) -> SimTime {
        SimTime::from_nanos(self.epoch.elapsed().as_nanos() as u64)
    }

    fn recorder(&mut self) -> Option<&mut (dyn Recorder + 'static)> {
        self.rec.as_deref_mut()
    }
}

impl<M> Drop for SocketTransport<M> {
    fn drop(&mut self) {
        // Half-close every write side so peer readers see a clean EOF
        // promptly (in-flight data is still delivered first); our own
        // reader threads exit when peers do the same.
        for w in self.writers.iter().flatten() {
            let _ = w.shutdown(Shutdown::Write);
        }
    }
}

/// Bind `p` loopback listeners on ephemeral ports.
fn bind_loopback(p: usize) -> std::io::Result<(Vec<TcpListener>, Vec<SocketAddr>)> {
    let mut listeners = Vec::with_capacity(p);
    let mut addrs = Vec::with_capacity(p);
    for _ in 0..p {
        let l = TcpListener::bind(("127.0.0.1", 0))?;
        addrs.push(l.local_addr()?);
        listeners.push(l);
    }
    Ok((listeners, addrs))
}

/// Run one closure per rank on `p` OS threads connected by a full mesh
/// of real loopback TCP sockets.
///
/// Mirrors [`run_thread_cluster`](crate::run_thread_cluster): same
/// closure signature, results in rank order, panics propagate. The
/// difference is that every message crosses the kernel's TCP stack.
pub fn run_socket_cluster<M, R, F>(p: usize, opts: SocketClusterOptions, f: F) -> Vec<R>
where
    M: WireCodec + WireSize + Clone + Send + 'static,
    R: Send,
    F: Fn(&mut SocketTransport<M>) -> R + Send + Sync,
{
    run_socket_cluster_inner(p, opts, None, f)
}

/// [`run_socket_cluster`] with a frame-layer fault spec shared by all
/// ranks.
///
/// Like the thread backend, fates depend on the real interleaving of
/// sends, so runs are not reproducible event-for-event; deterministic
/// *aggregates* (e.g. everything dropped under total loss) still are.
pub fn run_socket_cluster_with_faults<M, R, F>(
    p: usize,
    opts: SocketClusterOptions,
    faults: FaultSpec<M>,
    f: F,
) -> Vec<R>
where
    M: WireCodec + WireSize + Clone + Send + 'static,
    R: Send,
    F: Fn(&mut SocketTransport<M>) -> R + Send + Sync,
{
    run_socket_cluster_inner(p, opts, Some(Arc::new(SocketFaults::new(faults, p))), f)
}

fn run_socket_cluster_inner<M, R, F>(
    p: usize,
    opts: SocketClusterOptions,
    faults: Option<Arc<SocketFaults<M>>>,
    f: F,
) -> Vec<R>
where
    M: WireCodec + WireSize + Clone + Send + 'static,
    R: Send,
    F: Fn(&mut SocketTransport<M>) -> R + Send + Sync,
{
    assert!(p >= 1, "need at least one rank");
    let (listeners, addrs) = bind_loopback(p).expect("binding loopback listeners failed");
    let epoch = Instant::now();
    std::thread::scope(|s| {
        let handles: Vec<_> = listeners
            .into_iter()
            .enumerate()
            .map(|(r, listener)| {
                let addrs = addrs.clone();
                let opts = opts.clone();
                let faults = faults.clone();
                let f = &f;
                s.spawn(move || {
                    let mut t =
                        SocketTransport::establish(r, listener, &addrs, opts, faults, epoch)
                            .expect("socket mesh handshake failed");
                    f(&mut t)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rank thread panicked"))
            .collect()
    })
}

/// Join a multi-process socket cluster as `rank`, binding `addrs[rank]`
/// locally and meshing with the other processes (which must run the same
/// call with their own rank).
///
/// This is the entrypoint `examples/socket_cluster.rs --rank N --peers …`
/// uses to run one rank per terminal; the returned transport is the same
/// type the loopback runner hands its closures.
pub fn connect_socket_cluster<M>(
    rank: usize,
    addrs: &[SocketAddr],
    opts: SocketClusterOptions,
) -> std::io::Result<SocketTransport<M>>
where
    M: WireCodec + Send + 'static,
{
    assert!(
        rank < addrs.len(),
        "rank {rank} out of range for {} peers",
        addrs.len()
    );
    let listener = TcpListener::bind(addrs[rank])?;
    SocketTransport::establish(rank, listener, addrs, opts, None, Instant::now())
}

/// [`connect_socket_cluster`] with a process-local fault spec (each
/// process draws its own fates for the frames it sends).
pub fn connect_socket_cluster_with_faults<M>(
    rank: usize,
    addrs: &[SocketAddr],
    opts: SocketClusterOptions,
    faults: FaultSpec<M>,
) -> std::io::Result<SocketTransport<M>>
where
    M: WireCodec + Send + 'static,
{
    assert!(
        rank < addrs.len(),
        "rank {rank} out of range for {} peers",
        addrs.len()
    );
    let p = addrs.len();
    let listener = TcpListener::bind(addrs[rank])?;
    SocketTransport::establish(
        rank,
        listener,
        addrs,
        opts,
        Some(Arc::new(SocketFaults::new(faults, p))),
        Instant::now(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::{Loss, NoFaults};

    #[test]
    fn ranks_and_size_are_correct() {
        let ids = run_socket_cluster::<u64, _, _>(3, SocketClusterOptions::default(), |t| {
            (t.rank().0, t.size())
        });
        assert_eq!(ids, vec![(0, 3), (1, 3), (2, 3)]);
    }

    #[test]
    fn messages_arrive_with_content_intact() {
        let sums = run_socket_cluster::<u64, _, _>(4, SocketClusterOptions::default(), |t| {
            t.broadcast(Tag(0), 10 + t.rank().0 as u64);
            (0..t.size() - 1).map(|_| t.recv().msg).sum::<u64>()
        });
        let total: u64 = 10 + 11 + 12 + 13;
        for (me, s) in sums.iter().enumerate() {
            assert_eq!(*s, total - (10 + me as u64));
        }
    }

    #[test]
    fn vec_payloads_round_trip_through_the_wire() {
        let got = run_socket_cluster::<Vec<f64>, _, _>(2, SocketClusterOptions::default(), |t| {
            if t.rank().0 == 0 {
                t.send(Rank(1), Tag(7), vec![1.5, -2.25, f64::MAX]);
                Vec::new()
            } else {
                let env = t.recv();
                assert_eq!(env.src, Rank(0));
                assert_eq!(env.tag, Tag(7));
                env.msg
            }
        });
        assert_eq!(got[1], vec![1.5, -2.25, f64::MAX]);
    }

    #[test]
    fn per_pair_fifo_order_is_preserved() {
        let got = run_socket_cluster::<u64, _, _>(2, SocketClusterOptions::default(), |t| {
            if t.rank().0 == 0 {
                for i in 0..100 {
                    t.send(Rank(1), Tag(0), i);
                }
                Vec::new()
            } else {
                (0..100).map(|_| t.recv().msg).collect::<Vec<_>>()
            }
        });
        assert_eq!(got[1], (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn bytes_on_wire_match_between_sender_and_receiver() {
        let counts =
            run_socket_cluster::<Vec<f64>, _, _>(2, SocketClusterOptions::default(), |t| {
                if t.rank().0 == 0 {
                    for _ in 0..5 {
                        t.send(Rank(1), Tag(0), vec![0.5; 16]);
                    }
                    // Wait for the ack so the byte counters are settled.
                    let _ = t.recv();
                    t.bytes_on_wire()
                } else {
                    for _ in 0..5 {
                        let _ = t.recv();
                    }
                    t.send(Rank(0), Tag(1), vec![]);
                    t.bytes_on_wire()
                }
            });
        let (sent0, _) = counts[0];
        let (_, recv1) = counts[1];
        // 5 frames of (8-byte length prefix for the vec + 16 f64s) plus
        // framing overhead.
        let expected = 5 * (FRAME_OVERHEAD as u64 + 8 + 16 * 8);
        assert_eq!(sent0, expected);
        assert_eq!(recv1, expected);
    }

    #[test]
    fn socket_recv_timeout_expires_on_silence() {
        let results = run_socket_cluster::<u8, _, _>(2, SocketClusterOptions::default(), |t| {
            if t.rank().0 == 0 {
                // Keep the cluster alive while rank 1's timer runs.
                let got = t.recv_timeout(SimDuration::from_millis(500));
                got.is_some()
            } else {
                let before = t.timed_waits();
                let got = t.recv_timeout(SimDuration::from_millis(20));
                assert!(got.is_none(), "nothing was sent");
                assert!(t.timed_waits() > before, "wait did not block on condvar");
                t.send(Rank(0), Tag(0), 1);
                true
            }
        });
        assert!(results[0] && results[1]);
    }

    #[test]
    fn socket_recv_timeout_delivers_when_a_message_is_in_flight() {
        let results = run_socket_cluster::<u64, _, _>(2, SocketClusterOptions::default(), |t| {
            if t.rank().0 == 0 {
                t.send(Rank(1), Tag(0), 42);
                0
            } else {
                t.recv_timeout(SimDuration::from_millis(5_000))
                    .expect("message should arrive before the timeout")
                    .msg
            }
        });
        assert_eq!(results[1], 42);
    }

    #[test]
    fn total_loss_drops_every_frame() {
        let results = run_socket_cluster_with_faults::<u64, _, _>(
            2,
            SocketClusterOptions::default(),
            FaultSpec::new(Loss::new(1.0, 7)),
            |t| {
                if t.rank().0 == 0 {
                    for i in 0..5 {
                        t.send(Rank(1), Tag(0), i);
                    }
                    t.fault_counters().dropped
                } else {
                    let got = t.recv_timeout(SimDuration::from_millis(20));
                    assert!(got.is_none(), "total loss delivered a message");
                    0
                }
            },
        );
        assert_eq!(results[0], 5);
    }

    #[test]
    fn frame_corruption_without_corruptor_drops_or_perturbs() {
        use netsim::Corrupt;
        // Corrupt every frame; bool payloads make every flipped byte a
        // decode failure, so all frames must be dropped at the receiver.
        let results = run_socket_cluster_with_faults::<bool, _, _>(
            2,
            SocketClusterOptions::default(),
            FaultSpec::new(Corrupt::new(1.0, 1.0, 3)),
            |t| {
                if t.rank().0 == 0 {
                    for _ in 0..4 {
                        t.send(Rank(1), Tag(0), true);
                    }
                    // Give frames time to arrive and be rejected.
                    let got = t.recv_timeout(SimDuration::from_millis(200));
                    got.is_none() as u64
                } else {
                    let got = t.recv_timeout(SimDuration::from_millis(100));
                    assert!(got.is_none(), "corrupt bool frame decoded");
                    t.decode_failures()
                }
            },
        );
        assert_eq!(results[1], 4, "every corrupted frame must be rejected");
    }

    #[test]
    fn peer_disconnect_surfaces_as_crash_event_not_panic() {
        // Rank 0 exits immediately (dropping its transport closes its
        // sockets). Rank 1 must observe the disconnect as a crash-model
        // event: bounded waits keep expiring, nothing panics, and the
        // peer shows up in disconnected_peers().
        let results = run_socket_cluster::<u8, _, _>(2, SocketClusterOptions::default(), |t| {
            if t.rank().0 == 0 {
                0
            } else {
                // Survive an arbitrary number of bounded waits across the
                // peer's death.
                let mut waits = 0u64;
                for _ in 0..50 {
                    if t.recv_timeout(SimDuration::from_millis(10)).is_some() {
                        panic!("no message was ever sent");
                    }
                    waits += 1;
                    if !t.disconnected_peers().is_empty() {
                        break;
                    }
                }
                assert_eq!(t.disconnected_peers(), vec![Rank(0)]);
                // Sending into the void must not panic either.
                t.send(Rank(0), Tag(0), 9);
                waits
            }
        });
        assert!(results[1] >= 1);
    }

    #[test]
    fn multi_process_entrypoint_meshes_two_ranks() {
        // Exercise connect_socket_cluster the way two separate processes
        // would, using two plain threads with pre-agreed ports.
        let l0 = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let l1 = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addrs = [l0.local_addr().unwrap(), l1.local_addr().unwrap()];
        drop((l0, l1)); // free the ports for connect_socket_cluster to rebind
        let h0 = std::thread::spawn(move || {
            let mut t =
                connect_socket_cluster::<u64>(0, &addrs, SocketClusterOptions::default()).unwrap();
            t.send(Rank(1), Tag(0), 11);
            t.recv().msg
        });
        let h1 = std::thread::spawn(move || {
            let mut t =
                connect_socket_cluster::<u64>(1, &addrs, SocketClusterOptions::default()).unwrap();
            let got = t.recv().msg;
            t.send(Rank(0), Tag(0), got + 1);
            got
        });
        assert_eq!(h1.join().unwrap(), 11);
        assert_eq!(h0.join().unwrap(), 12);
    }

    #[test]
    fn no_faults_spec_behaves_like_fault_free() {
        let got = run_socket_cluster_with_faults::<u64, _, _>(
            2,
            SocketClusterOptions::default(),
            FaultSpec::new(NoFaults),
            |t| {
                if t.rank().0 == 0 {
                    t.send(Rank(1), Tag(0), 5);
                    t.fault_counters().delivered
                } else {
                    t.recv().msg
                }
            },
        );
        assert_eq!(got, vec![1, 5]);
    }
}
