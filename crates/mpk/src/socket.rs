//! Real TCP transport backend: ranks are processes (or threads, in
//! loopback mode) exchanging length-prefixed frames over a full mesh of
//! `std::net` sockets.
//!
//! This is the step the paper's PVM setting takes out of the process:
//! delay, batching, and disconnects come from a real network stack
//! instead of an injected model. The backend keeps the exact receive
//! discipline of [`ThreadTransport`](crate::ThreadTransport) — one
//! per-peer reader thread feeds the same condvar mailbox, so `recv`,
//! `try_recv`, and the event-driven `recv_timeout` behave identically —
//! which is what makes three-way agreement (sim ≡ thread ≡ socket) under
//! exact semantics provable rather than hoped-for.
//!
//! # Wire format
//!
//! Every frame is `[len: u32][version: u8][kind: u8][src: u32][tag: u32]
//! [payload…]`, all little-endian; `len` counts everything after itself
//! and is capped by [`SocketClusterOptions::max_frame_bytes`] — a hostile
//! or corrupt length prefix is a decode failure, never an allocation.
//! `kind` is [`KIND_HELLO`] during the handshake and [`KIND_DATA`] after;
//! supervised meshes additionally exchange [`KIND_HEARTBEAT`] liveness
//! probes, [`KIND_GOODBYE`] clean-shutdown notices, and [`KIND_RESUME`]
//! rejoin handshakes. Payloads are encoded with [`WireCodec`]. A frame
//! that fails to decode is *dropped*, not surfaced: on a real wire, a
//! corrupt frame is a lost message (the fault-tolerant drivers already
//! treat it exactly like loss).
//!
//! # Handshake
//!
//! Connection establishment is deterministic and rank-ordered: rank `r`
//! dials every lower rank (retrying on a jittered exponential backoff
//! while peers are still starting) and then accepts one connection from
//! every higher rank, identifying each accepted peer by the `HELLO`
//! frame it must send first. Rank 0 dials no one, so it reaches its
//! accept loop immediately; by induction every dial finds a listening
//! accept loop and the mesh cannot deadlock.
//!
//! # Supervision, reconnect, and rejoin
//!
//! With [`SocketClusterOptions::supervision`] set, every rank keeps its
//! listener alive and runs two more threads:
//!
//! * a **supervisor** that writes a heartbeat frame to every live peer
//!   each interval, raises a suspicion event when a peer has been silent
//!   past the miss deadline (catching *silent* peers, not just EOF/RST),
//!   and re-dials dead peers it originally dialed (`peer < rank`) on a
//!   jittered exponential backoff up to a retry budget;
//! * an **acceptor** that accepts post-handshake connections and admits
//!   a peer back into the mesh via the `RESUME` handshake (peer rank +
//!   last-seen iteration, mirrored in the reply).
//!
//! Because reconnect duty follows the original dial direction (higher
//! rank dials lower), a restarted process calling
//! [`rejoin_socket_cluster`] re-dials exactly its original dialees and
//! is re-dialed by its original dialers — the same induction that makes
//! cold start deadlock-free covers rejoin.
//!
//! A transport that is *dropped* (orderly exit) first writes a `GOODBYE`
//! frame on every connection, so peers record a clean departure instead
//! of a crash; only a connection that dies without one (RST, EOF, or
//! heartbeat silence) feeds the crash path.
//!
//! # Faults and disconnects
//!
//! [`run_socket_cluster_with_faults`] applies a [`FaultSpec`] at the
//! frame layer of the *sender*: dropped fates are never written,
//! duplicate fates re-write the encoded frame, and corruption either
//! runs the spec's payload corruptor (sim-compatible semantics) or, when
//! none is given, flips a byte of the encoded payload before the write.
//! A peer that disconnects without a goodbye is surfaced as a
//! [`Mark::PeerCrashed`] event and the transport keeps working — the
//! reader thread never panics, and bounded waits keep expiring — which
//! feeds the same crash/recovery path the fault-tolerant driver already
//! handles.

use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering as AtomicOrdering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use desim::{SimDuration, SimTime};
use netsim::{FaultModel, MsgCtx};
use obs::{Mark, Recorder};
use parking_lot::Mutex;

use crate::backoff::Backoff;
use crate::codec::WireCodec;
use crate::sim::FaultSpec;
use crate::threads::ThreadMailbox;
use crate::transport::Transport;
use crate::types::{Envelope, FaultCounters, Rank, Tag, WireSize, HEADER_BYTES};

/// Wire protocol version carried in every frame header.
pub const WIRE_VERSION: u8 = 1;
/// Handshake frame: `tag` is unused, payload is the sender's cluster size.
pub const KIND_HELLO: u8 = 0;
/// Data frame: `src`/`tag` are the envelope fields, payload a [`WireCodec`]
/// encoding of the message.
pub const KIND_DATA: u8 = 1;
/// Supervisor liveness probe: empty payload, never delivered to the
/// application — it only refreshes the receiver's last-heard clock.
pub const KIND_HEARTBEAT: u8 = 2;
/// Clean-shutdown notice written by [`SocketTransport`]'s `Drop` so an
/// orderly exit is not mistaken for a crash.
pub const KIND_GOODBYE: u8 = 3;
/// Rejoin handshake: payload is the sender's cluster size (`u32`) and
/// last-seen iteration (`u64`); the accepting side replies in kind.
pub const KIND_RESUME: u8 = 4;
/// Bytes of header inside the length-counted region (version + kind +
/// src + tag).
const FRAME_HEADER: usize = 10;
/// Total framing overhead per message on the wire (length prefix plus
/// header).
pub const FRAME_OVERHEAD: usize = 4 + FRAME_HEADER;
/// Default upper bound on a frame's length prefix; anything larger is
/// treated as a corrupt stream, not an allocation request.
pub const DEFAULT_MAX_FRAME: usize = 256 << 20;

/// How long a freshly-accepted or freshly-dialed connection may stall
/// mid-handshake before it is dropped. Bounds every blocking handshake
/// read so a silent dialer cannot wedge establish, the acceptor, or a
/// supervisor redial.
const HANDSHAKE_READ_TIMEOUT: Duration = Duration::from_secs(2);

/// Supervision knobs: heartbeat cadence, silence deadline, and the
/// jittered-backoff reconnect schedule.
#[derive(Clone, Debug)]
pub struct SupervisorOptions {
    /// Interval between heartbeat probes to every live peer.
    pub heartbeat_interval: Duration,
    /// A peer silent (no data, no heartbeat) for longer than this is
    /// reported suspected. Should be several heartbeat intervals.
    pub miss_deadline: Duration,
    /// First reconnect backoff delay (doubles per attempt).
    pub backoff_base: Duration,
    /// Upper bound on a single reconnect backoff delay.
    pub backoff_cap: Duration,
    /// Reconnect attempts per outage before the supervisor gives up on
    /// a peer (the driver's quarantine path takes it from there).
    pub retry_budget: u32,
    /// Seed for the backoff jitter stream (mixed with both ranks so
    /// simultaneous reconnectors de-synchronize deterministically).
    pub seed: u64,
}

impl Default for SupervisorOptions {
    fn default() -> Self {
        SupervisorOptions {
            heartbeat_interval: Duration::from_millis(25),
            miss_deadline: Duration::from_millis(150),
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(500),
            retry_budget: 40,
            seed: 0,
        }
    }
}

/// Configuration of a socket-backed cluster.
#[derive(Clone, Debug)]
pub struct SocketClusterOptions {
    /// Nominal speed for [`Transport::compute`], in million ops per
    /// second (matches [`ThreadClusterOptions::mips`]
    /// (crate::ThreadClusterOptions::mips)).
    pub mips: f64,
    /// How long a dialing rank retries a peer that is not yet listening
    /// before giving up. Loopback clusters connect instantly; the slack
    /// exists for multi-process starts from separate terminals.
    pub connect_timeout: Duration,
    /// Set `TCP_NODELAY` on every connection. On by default: the
    /// workloads exchange small latency-sensitive frames, exactly the
    /// case Nagle batching hurts.
    pub nodelay: bool,
    /// Upper bound accepted for a frame's declared length. A prefix
    /// above this is a decode failure (stream treated as corrupt), so a
    /// hostile peer cannot make the reader allocate unboundedly.
    pub max_frame_bytes: usize,
    /// Peer supervision (heartbeats, silence detection, reconnect,
    /// rejoin acceptance). `None` — the default — reproduces the
    /// unsupervised PR 6/7 behavior bit for bit.
    pub supervision: Option<SupervisorOptions>,
}

impl Default for SocketClusterOptions {
    fn default() -> Self {
        SocketClusterOptions {
            mips: 1000.0,
            connect_timeout: Duration::from_secs(30),
            nodelay: true,
            max_frame_bytes: DEFAULT_MAX_FRAME,
            supervision: None,
        }
    }
}

/// Aggregate supervision activity of one rank's transport.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SupervisionCounters {
    /// Heartbeat frames written to peers.
    pub heartbeats_sent: u64,
    /// Heartbeat frames received from peers.
    pub heartbeats_received: u64,
    /// Reconnect dials attempted by the supervisor.
    pub reconnect_attempts: u64,
    /// Connections re-established (dialed or accepted) after a loss.
    pub reconnects: u64,
}

/// What a reader/supervisor/acceptor thread delivers into the mailbox:
/// a decoded message or a membership event about the sending peer.
enum SocketEvent<M> {
    Data(M),
    /// Connection died without a goodbye: crash semantics.
    PeerGone,
    /// Goodbye frame received: clean shutdown, not a crash.
    PeerDeparted,
    /// Supervisor: peer silent past the miss deadline.
    PeerSuspected,
    /// A connection to this peer was (re)established.
    PeerBack,
}

/// Shared fault state of a socket cluster (loopback mode shares one
/// across ranks, matching the thread backend; multi-process mode gives
/// each process its own).
struct SocketFaults<M> {
    spec: Mutex<FaultSpec<M>>,
    counters: Mutex<Vec<FaultCounters>>,
    /// Deterministic per-hit counter handed to corruptors.
    salt: AtomicU64,
}

impl<M> SocketFaults<M> {
    fn new(spec: FaultSpec<M>, p: usize) -> Self {
        SocketFaults {
            spec: Mutex::new(spec),
            counters: Mutex::new(vec![FaultCounters::default(); p]),
            salt: AtomicU64::new(0),
        }
    }
}

/// State shared between the transport, its per-peer reader threads, and
/// (under supervision) the supervisor and acceptor threads.
struct Shared<M> {
    rank: usize,
    size: usize,
    max_frame: usize,
    epoch: Instant,
    mailbox: Arc<ThreadMailbox<SocketEvent<M>>>,
    /// Write halves of the mesh, by peer rank (`None` for self and for
    /// peers whose connection is down).
    writers: Vec<Mutex<Option<TcpStream>>>,
    /// Bumped on every (re)install; a reader whose generation is stale
    /// suppresses its exit event so a replaced connection's death cannot
    /// shadow the live one.
    conn_gen: Vec<AtomicU64>,
    /// Per-peer nanoseconds-since-epoch of the last frame of any kind.
    last_heard: Vec<AtomicU64>,
    /// Peers that said goodbye (clean shutdown observed).
    departed: Vec<AtomicBool>,
    bytes_received: AtomicU64,
    decode_failures: AtomicU64,
    /// Inbound connections dropped because their handshake was invalid,
    /// truncated, or stalled (cold-start HELLO phase and acceptor RESUME
    /// path). Peer-controlled input: counted, never fatal.
    handshake_rejects: AtomicU64,
    heartbeats_sent: AtomicU64,
    heartbeats_received: AtomicU64,
    reconnect_attempts: AtomicU64,
    reconnects: AtomicU64,
    /// Last-seen iteration each peer reported in a RESUME handshake.
    peer_progress: Vec<AtomicU64>,
    /// Our own progress, reported in RESUME replies.
    progress: AtomicU64,
    shutdown: AtomicBool,
}

impl<M> Shared<M> {
    fn new(rank: usize, size: usize, max_frame: usize, epoch: Instant) -> Self {
        Shared {
            rank,
            size,
            max_frame,
            epoch,
            mailbox: Arc::new(ThreadMailbox::new()),
            writers: (0..size).map(|_| Mutex::new(None)).collect(),
            conn_gen: (0..size).map(|_| AtomicU64::new(0)).collect(),
            last_heard: (0..size).map(|_| AtomicU64::new(0)).collect(),
            departed: (0..size).map(|_| AtomicBool::new(false)).collect(),
            bytes_received: AtomicU64::new(0),
            decode_failures: AtomicU64::new(0),
            handshake_rejects: AtomicU64::new(0),
            heartbeats_sent: AtomicU64::new(0),
            heartbeats_received: AtomicU64::new(0),
            reconnect_attempts: AtomicU64::new(0),
            reconnects: AtomicU64::new(0),
            peer_progress: (0..size).map(|_| AtomicU64::new(0)).collect(),
            progress: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
        }
    }

    fn t_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    fn push_event(&self, peer: usize, ev: SocketEvent<M>) {
        self.mailbox.push(
            Instant::now(),
            Envelope {
                src: Rank(peer),
                tag: Tag(0),
                msg: ev,
            },
        );
    }
}

/// One decoded frame: `(kind, src, tag, payload)`.
type Frame = (u8, u32, u32, Vec<u8>);

/// Read one frame. `Ok(None)` on a clean EOF at a frame boundary; any
/// malformed header — including a declared length above `max_frame` —
/// is an error (the stream cannot be resynchronized).
fn read_frame(stream: &mut TcpStream, max_frame: usize) -> std::io::Result<Option<Frame>> {
    let mut len_raw = [0u8; 4];
    match stream.read_exact(&mut len_raw) {
        Ok(()) => {}
        Err(e) if e.kind() == ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len_raw) as usize;
    if !(FRAME_HEADER..=max_frame).contains(&len) {
        return Err(std::io::Error::new(
            ErrorKind::InvalidData,
            format!("frame length {len} out of bounds (cap {max_frame})"),
        ));
    }
    let mut body = vec![0u8; len];
    stream.read_exact(&mut body)?;
    if body[0] != WIRE_VERSION {
        return Err(std::io::Error::new(
            ErrorKind::InvalidData,
            format!("wire version {} (expected {WIRE_VERSION})", body[0]),
        ));
    }
    let kind = body[1];
    let src = u32::from_le_bytes(body[2..6].try_into().unwrap());
    let tag = u32::from_le_bytes(body[6..10].try_into().unwrap());
    let payload = body.split_off(FRAME_HEADER);
    Ok(Some((kind, src, tag, payload)))
}

/// Encode a frame into `out` (cleared first).
fn encode_frame(out: &mut Vec<u8>, kind: u8, src: u32, tag: u32, payload: &dyn Fn(&mut Vec<u8>)) {
    out.clear();
    out.extend_from_slice(&[0; 4]); // length, patched below
    out.push(WIRE_VERSION);
    out.push(kind);
    out.extend_from_slice(&src.to_le_bytes());
    out.extend_from_slice(&tag.to_le_bytes());
    payload(out);
    let len = (out.len() - 4) as u32;
    out[0..4].copy_from_slice(&len.to_le_bytes());
}

fn write_hello(stream: &mut TcpStream, rank: usize, size: usize) -> std::io::Result<()> {
    let mut frame = Vec::with_capacity(FRAME_OVERHEAD + 4);
    encode_frame(&mut frame, KIND_HELLO, rank as u32, 0, &|out| {
        out.extend_from_slice(&(size as u32).to_le_bytes());
    });
    stream.write_all(&frame)
}

/// Write a RESUME handshake frame carrying cluster size and our
/// last-seen iteration.
fn write_resume(
    stream: &mut TcpStream,
    rank: usize,
    size: usize,
    last_iter: u64,
) -> std::io::Result<()> {
    let mut frame = Vec::with_capacity(FRAME_OVERHEAD + 12);
    encode_frame(&mut frame, KIND_RESUME, rank as u32, 0, &|out| {
        out.extend_from_slice(&(size as u32).to_le_bytes());
        out.extend_from_slice(&last_iter.to_le_bytes());
    });
    stream.write_all(&frame)
}

fn bad_data(msg: String) -> std::io::Error {
    std::io::Error::new(ErrorKind::InvalidData, msg)
}

/// Validate a handshake frame's cluster size and rank range.
fn check_identity(src: u32, peer_size: usize, size: usize) -> std::io::Result<usize> {
    if peer_size != size {
        return Err(bad_data(format!(
            "peer believes cluster size is {peer_size}, ours is {size}"
        )));
    }
    let peer = src as usize;
    if peer >= size {
        return Err(bad_data(format!(
            "peer rank {peer} out of range for size {size}"
        )));
    }
    Ok(peer)
}

/// Read and validate a `HELLO`, returning the peer's rank.
fn read_hello(stream: &mut TcpStream, size: usize, max_frame: usize) -> std::io::Result<usize> {
    let (kind, src, _tag, payload) = read_frame(stream, max_frame)?.ok_or_else(|| {
        std::io::Error::new(ErrorKind::UnexpectedEof, "peer closed during handshake")
    })?;
    if kind != KIND_HELLO {
        return Err(bad_data(format!("expected HELLO, got frame kind {kind}")));
    }
    let peer_size = payload
        .get(0..4)
        .map(|b| u32::from_le_bytes(b.try_into().unwrap()) as usize)
        .ok_or_else(|| bad_data("HELLO payload truncated".into()))?;
    check_identity(src, peer_size, size)
}

/// Read either a `RESUME` or (for symmetry with cold start) a `HELLO`,
/// returning the peer's rank and its reported last-seen iteration.
fn read_resume(
    stream: &mut TcpStream,
    size: usize,
    max_frame: usize,
) -> std::io::Result<(usize, u64)> {
    let (kind, src, _tag, payload) = read_frame(stream, max_frame)?.ok_or_else(|| {
        std::io::Error::new(ErrorKind::UnexpectedEof, "peer closed during resume")
    })?;
    if kind != KIND_RESUME && kind != KIND_HELLO {
        return Err(bad_data(format!(
            "expected RESUME or HELLO, got frame kind {kind}"
        )));
    }
    let peer_size = payload
        .get(0..4)
        .map(|b| u32::from_le_bytes(b.try_into().unwrap()) as usize)
        .ok_or_else(|| bad_data("handshake payload truncated".into()))?;
    let last_iter = payload
        .get(4..12)
        .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
        .unwrap_or(0);
    let peer = check_identity(src, peer_size, size)?;
    Ok((peer, last_iter))
}

/// Dial `addr` on a jittered exponential backoff, bounded by a total
/// deadline rather than an attempt count.
fn connect_with_retry(
    addr: SocketAddr,
    timeout: Duration,
    seed: u64,
) -> std::io::Result<TcpStream> {
    let deadline = Instant::now() + timeout;
    let mut backoff = Backoff::new(
        Duration::from_millis(2),
        Duration::from_millis(250),
        seed ^ 0x5bd1_e995,
    );
    loop {
        match TcpStream::connect(addr) {
            Ok(s) => return Ok(s),
            Err(e) => {
                let now = Instant::now();
                if now >= deadline {
                    return Err(std::io::Error::new(
                        ErrorKind::TimedOut,
                        format!(
                            "connecting to peer {addr} timed out after {} attempts: {e}",
                            backoff.attempts() + 1
                        ),
                    ));
                }
                let delay = backoff.next_delay().min(deadline - now);
                std::thread::sleep(delay);
            }
        }
    }
}

/// Install a live connection to `peer`: bump the generation, swap in the
/// write half, refresh liveness, and spawn a reader on the read half.
fn install_connection<M: WireCodec + Send + 'static>(
    shared: &Arc<Shared<M>>,
    peer: usize,
    stream: TcpStream,
) -> std::io::Result<()> {
    let reader = stream.try_clone()?;
    let gen = shared.conn_gen[peer].fetch_add(1, AtomicOrdering::SeqCst) + 1;
    shared.departed[peer].store(false, AtomicOrdering::Relaxed);
    shared.last_heard[peer].store(shared.t_ns(), AtomicOrdering::Relaxed);
    *shared.writers[peer].lock() = Some(stream);
    spawn_reader(reader, peer, gen, Arc::clone(shared));
    Ok(())
}

/// One reader thread per peer connection: read frames, decode, deliver
/// into the shared mailbox. The thread must never panic — every failure
/// mode (EOF, reset, garbage) reduces to either "frame dropped",
/// "peer departed" (goodbye), or "peer gone" (crash).
fn spawn_reader<M: WireCodec + Send + 'static>(
    mut stream: TcpStream,
    peer: usize,
    gen: u64,
    shared: Arc<Shared<M>>,
) {
    std::thread::spawn(move || {
        let current = |shared: &Shared<M>| {
            shared.conn_gen[peer].load(AtomicOrdering::SeqCst) == gen
                && !shared.shutdown.load(AtomicOrdering::Relaxed)
        };
        loop {
            match read_frame(&mut stream, shared.max_frame) {
                Ok(Some((kind, src, tag, payload))) => {
                    if src as usize != peer {
                        // A frame claiming another origin on a
                        // point-to-point connection is corruption.
                        shared.decode_failures.fetch_add(1, AtomicOrdering::Relaxed);
                        continue;
                    }
                    shared.last_heard[peer].store(shared.t_ns(), AtomicOrdering::Relaxed);
                    match kind {
                        KIND_HEARTBEAT => {
                            shared
                                .heartbeats_received
                                .fetch_add(1, AtomicOrdering::Relaxed);
                        }
                        KIND_GOODBYE => {
                            if current(&shared) {
                                shared.push_event(peer, SocketEvent::PeerDeparted);
                            }
                            return;
                        }
                        KIND_DATA => {
                            shared.bytes_received.fetch_add(
                                (FRAME_OVERHEAD + payload.len()) as u64,
                                AtomicOrdering::Relaxed,
                            );
                            match crate::codec::decode_exact::<M>(&payload) {
                                Some(msg) => shared.mailbox.push(
                                    Instant::now(),
                                    Envelope {
                                        src: Rank(peer),
                                        tag: Tag(tag),
                                        msg: SocketEvent::Data(msg),
                                    },
                                ),
                                // Corrupt payload: the frame is lost,
                                // exactly like a datagram failing its
                                // checksum.
                                None => {
                                    shared.decode_failures.fetch_add(1, AtomicOrdering::Relaxed);
                                }
                            }
                        }
                        _ => {
                            shared.decode_failures.fetch_add(1, AtomicOrdering::Relaxed);
                        }
                    }
                }
                // EOF or connection error without a goodbye: the peer is
                // gone. Deliver the event (unless this connection was
                // already replaced) and exit; pending bounded waits keep
                // expiring and the driver's crash path takes over.
                Ok(None) | Err(_) => {
                    if current(&shared) {
                        shared.push_event(peer, SocketEvent::PeerGone);
                    }
                    return;
                }
            }
        }
    });
}

/// Dial `addr` once and run the RESUME handshake as `shared.rank`.
/// Returns the established stream after recording the peer's progress.
fn resume_dial<M>(
    shared: &Shared<M>,
    peer: usize,
    addr: SocketAddr,
    nodelay: bool,
) -> std::io::Result<TcpStream> {
    let mut s = TcpStream::connect(addr)?;
    s.set_nodelay(nodelay)?;
    s.set_read_timeout(Some(HANDSHAKE_READ_TIMEOUT))?;
    write_resume(
        &mut s,
        shared.rank,
        shared.size,
        shared.progress.load(AtomicOrdering::Relaxed),
    )?;
    let (replied, their_iter) = read_resume(&mut s, shared.size, shared.max_frame)?;
    if replied != peer {
        return Err(bad_data(format!(
            "dialed rank {peer} for resume but rank {replied} answered"
        )));
    }
    shared.peer_progress[peer].store(their_iter, AtomicOrdering::Relaxed);
    s.set_read_timeout(None)?;
    Ok(s)
}

/// The supervisor thread: heartbeats to live peers, silence detection,
/// and backoff-bounded reconnects toward peers this rank originally
/// dialed (`peer < rank`).
fn spawn_supervisor<M: WireCodec + Send + 'static>(
    shared: Arc<Shared<M>>,
    sup: SupervisorOptions,
    addrs: Vec<SocketAddr>,
    nodelay: bool,
) {
    std::thread::spawn(move || {
        let me = shared.rank;
        let size = shared.size;
        // Per-peer suspicion latch and reconnect schedule
        // (backoff, next-attempt time, attempts so far this outage).
        let mut suspected = vec![false; size];
        let mut redial: Vec<Option<(Backoff, Instant, u32)>> = (0..size).map(|_| None).collect();
        let mut hb = Vec::with_capacity(FRAME_OVERHEAD);
        encode_frame(&mut hb, KIND_HEARTBEAT, me as u32, 0, &|_| {});
        let miss_ns = sup.miss_deadline.as_nanos() as u64;
        loop {
            std::thread::sleep(sup.heartbeat_interval);
            if shared.shutdown.load(AtomicOrdering::Relaxed) {
                return;
            }
            for peer in 0..size {
                if peer == me || shared.departed[peer].load(AtomicOrdering::Relaxed) {
                    continue;
                }
                let alive = {
                    let mut w = shared.writers[peer].lock();
                    match w.as_mut() {
                        Some(s) => {
                            if s.write_all(&hb).is_ok() {
                                shared.heartbeats_sent.fetch_add(1, AtomicOrdering::Relaxed);
                                true
                            } else {
                                // Dead write half: drop it; the reader
                                // reports the crash on its own.
                                *w = None;
                                false
                            }
                        }
                        None => false,
                    }
                };
                if alive {
                    redial[peer] = None;
                    let silent_ns = shared
                        .t_ns()
                        .saturating_sub(shared.last_heard[peer].load(AtomicOrdering::Relaxed));
                    if silent_ns > miss_ns {
                        if !suspected[peer] {
                            suspected[peer] = true;
                            shared.push_event(peer, SocketEvent::PeerSuspected);
                        }
                    } else {
                        suspected[peer] = false;
                    }
                } else if peer < me {
                    // Reconnect duty follows the original dial
                    // direction, so a restarted peer is re-dialed by
                    // exactly the ranks that dialed it at cold start.
                    let seed = sup.seed ^ ((me as u64) << 32) ^ peer as u64;
                    let (bo, next_at, attempts) = redial[peer].get_or_insert_with(|| {
                        (
                            Backoff::new(sup.backoff_base, sup.backoff_cap, seed),
                            Instant::now(),
                            0,
                        )
                    });
                    if *attempts >= sup.retry_budget || Instant::now() < *next_at {
                        continue;
                    }
                    *attempts += 1;
                    shared
                        .reconnect_attempts
                        .fetch_add(1, AtomicOrdering::Relaxed);
                    match resume_dial(&shared, peer, addrs[peer], nodelay) {
                        Ok(stream) => {
                            if install_connection(&shared, peer, stream).is_ok() {
                                shared.reconnects.fetch_add(1, AtomicOrdering::Relaxed);
                                suspected[peer] = false;
                                redial[peer] = None;
                                shared.push_event(peer, SocketEvent::PeerBack);
                            }
                        }
                        Err(_) => {
                            *next_at = Instant::now() + bo.next_delay();
                        }
                    }
                }
            }
        }
    });
}

/// The acceptor thread: admits post-handshake connections (RESUME from a
/// restarted peer, or a supervisor redial) back into the mesh.
fn spawn_acceptor<M: WireCodec + Send + 'static>(
    shared: Arc<Shared<M>>,
    listener: TcpListener,
    poll: Duration,
    nodelay: bool,
) {
    std::thread::spawn(move || {
        if listener.set_nonblocking(true).is_err() {
            return;
        }
        loop {
            if shared.shutdown.load(AtomicOrdering::Relaxed) {
                return;
            }
            match listener.accept() {
                Ok((mut s, _)) => {
                    let admitted = (|| -> std::io::Result<()> {
                        s.set_nonblocking(false)?;
                        s.set_nodelay(nodelay)?;
                        s.set_read_timeout(Some(HANDSHAKE_READ_TIMEOUT))?;
                        let (peer, their_iter) =
                            read_resume(&mut s, shared.size, shared.max_frame)?;
                        if peer == shared.rank {
                            return Err(bad_data("peer claims our own rank".into()));
                        }
                        write_resume(
                            &mut s,
                            shared.rank,
                            shared.size,
                            shared.progress.load(AtomicOrdering::Relaxed),
                        )?;
                        s.set_read_timeout(None)?;
                        shared.peer_progress[peer].store(their_iter, AtomicOrdering::Relaxed);
                        install_connection(&shared, peer, s)?;
                        shared.reconnects.fetch_add(1, AtomicOrdering::Relaxed);
                        shared.push_event(peer, SocketEvent::PeerBack);
                        Ok(())
                    })();
                    // A bogus dialer is dropped and counted; the mesh
                    // state is untouched.
                    if admitted.is_err() {
                        shared
                            .handshake_rejects
                            .fetch_add(1, AtomicOrdering::Relaxed);
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(poll),
                Err(_) => std::thread::sleep(poll),
            }
        }
    });
}

/// A rank's endpoint on a socket-backed cluster.
pub struct SocketTransport<M> {
    rank: Rank,
    size: usize,
    opts: SocketClusterOptions,
    shared: Arc<Shared<M>>,
    epoch: Instant,
    rec: Option<Box<dyn Recorder>>,
    faults: Option<Arc<SocketFaults<M>>>,
    /// Frame bytes actually written to the wire by this rank.
    bytes_sent: u64,
    /// Peers whose connection has been observed down (membership events
    /// already emitted).
    peer_down: Vec<bool>,
    /// Peers that departed cleanly (subset of `peer_down`).
    peer_departed: Vec<bool>,
    /// Peers currently marked suspected by the supervisor.
    peer_suspected: Vec<bool>,
    scratch: Vec<u8>,
}

impl<M: WireCodec + Send + 'static> SocketTransport<M> {
    /// Build a transport from an already-bound listener and the full
    /// address list. `addrs[rank]` must be this process's own listener
    /// address; the call blocks until the full mesh is up.
    fn establish(
        rank: usize,
        listener: TcpListener,
        addrs: &[SocketAddr],
        opts: SocketClusterOptions,
        faults: Option<Arc<SocketFaults<M>>>,
        epoch: Instant,
    ) -> std::io::Result<Self> {
        let size = addrs.len();
        assert!(rank < size, "rank {rank} out of range for {size} addrs");
        let mut conns: Vec<Option<TcpStream>> = (0..size).map(|_| None).collect();

        let shared = Arc::new(Shared::new(rank, size, opts.max_frame_bytes, epoch));

        // Phase 1: dial every lower rank, in rank order. Failures here
        // are fatal: these are *our* configured peers, so a broken dial
        // means the cluster spec is wrong or the peer is down, and the
        // handshake read timeout bounds how long a stalled accept side
        // can hold us.
        for peer in 0..rank {
            let mut s = connect_with_retry(
                addrs[peer],
                opts.connect_timeout,
                (rank as u64) << 16 | peer as u64,
            )?;
            s.set_nodelay(opts.nodelay)?;
            s.set_read_timeout(Some(HANDSHAKE_READ_TIMEOUT))?;
            write_hello(&mut s, rank, size)?;
            let replied = read_hello(&mut s, size, opts.max_frame_bytes)?;
            if replied != peer {
                return Err(bad_data(format!(
                    "dialed rank {peer} but rank {replied} answered"
                )));
            }
            s.set_read_timeout(None)?;
            conns[peer] = Some(s);
        }

        // Phase 2: accept connections until every higher rank has
        // identified itself with a valid HELLO. Unlike phase 1, each
        // inbound connection is peer-controlled input: one that stalls,
        // closes mid-handshake, claims a bogus rank, or duplicates an
        // already-admitted peer is dropped and counted — it must not
        // tear down this rank's whole establish (which would cascade
        // into the cluster harness as a panic).
        let mut missing = size - rank - 1;
        while missing > 0 {
            let (mut s, _) = listener.accept()?;
            let admitted = (|| -> std::io::Result<usize> {
                s.set_nodelay(opts.nodelay)?;
                s.set_read_timeout(Some(HANDSHAKE_READ_TIMEOUT))?;
                let peer = read_hello(&mut s, size, opts.max_frame_bytes)?;
                if peer <= rank || conns[peer].is_some() {
                    return Err(bad_data(format!("unexpected HELLO from rank {peer}")));
                }
                write_hello(&mut s, rank, size)?;
                s.set_read_timeout(None)?;
                Ok(peer)
            })();
            match admitted {
                Ok(peer) => {
                    conns[peer] = Some(s);
                    missing -= 1;
                }
                Err(_) => {
                    shared
                        .handshake_rejects
                        .fetch_add(1, AtomicOrdering::Relaxed);
                }
            }
        }

        for (peer, conn) in conns.into_iter().enumerate() {
            if let Some(conn) = conn {
                install_connection(&shared, peer, conn)?;
            }
        }
        if let Some(sup) = opts.supervision.clone() {
            let poll = sup.heartbeat_interval;
            spawn_acceptor(Arc::clone(&shared), listener, poll, opts.nodelay);
            spawn_supervisor(Arc::clone(&shared), sup, addrs.to_vec(), opts.nodelay);
        }
        // Without supervision the listener drops here, exactly as before.

        Ok(SocketTransport {
            rank: Rank(rank),
            size,
            opts,
            shared,
            epoch,
            rec: None,
            faults,
            bytes_sent: 0,
            peer_down: vec![false; size],
            peer_departed: vec![false; size],
            peer_suspected: vec![false; size],
            scratch: Vec::new(),
        })
    }
}

impl<M> SocketTransport<M> {
    /// Attach a structured telemetry sink for this rank (same contract
    /// as [`ThreadTransport::set_recorder`]
    /// (crate::ThreadTransport::set_recorder)).
    pub fn set_recorder(&mut self, rec: Box<dyn Recorder>) {
        self.rec = Some(rec);
    }

    /// How many times this rank's timed receives have blocked on the
    /// mailbox condvar (the zero-spin property carries over from the
    /// thread backend — frames arriving over TCP notify the same
    /// condvar).
    pub fn timed_waits(&self) -> u64 {
        self.shared
            .mailbox
            .timed_waits
            .load(AtomicOrdering::Relaxed)
    }

    /// Actual frame bytes this rank has written to and read from the
    /// wire for data frames, including framing overhead:
    /// `(sent, received)`. Control frames (heartbeats, handshakes,
    /// goodbyes) are not counted.
    pub fn bytes_on_wire(&self) -> (u64, u64) {
        (
            self.bytes_sent,
            self.shared.bytes_received.load(AtomicOrdering::Relaxed),
        )
    }

    /// Frames discarded because their payload failed to decode.
    pub fn decode_failures(&self) -> u64 {
        self.shared.decode_failures.load(AtomicOrdering::Relaxed)
    }

    /// Inbound connections dropped because their handshake was invalid,
    /// truncated, or stalled — across both the cold-start HELLO phase
    /// and the supervised acceptor's RESUME path.
    pub fn handshake_rejects(&self) -> u64 {
        self.shared.handshake_rejects.load(AtomicOrdering::Relaxed)
    }

    /// Peers whose TCP connection has been observed down so far (both
    /// crashes and clean departures).
    pub fn disconnected_peers(&self) -> Vec<Rank> {
        self.peer_down
            .iter()
            .enumerate()
            .filter_map(|(r, down)| down.then_some(Rank(r)))
            .collect()
    }

    /// Peers that announced a clean shutdown with a goodbye frame.
    pub fn departed_peers(&self) -> Vec<Rank> {
        self.peer_departed
            .iter()
            .enumerate()
            .filter_map(|(r, d)| d.then_some(Rank(r)))
            .collect()
    }

    /// Peers currently suspected by the supervisor (silent past the
    /// miss deadline but not yet observed disconnected).
    pub fn suspected_peers(&self) -> Vec<Rank> {
        self.peer_suspected
            .iter()
            .enumerate()
            .filter_map(|(r, s)| s.then_some(Rank(r)))
            .collect()
    }

    /// The last-seen iteration `peer` reported in a RESUME handshake
    /// (0 if it never resumed against us).
    pub fn peer_progress(&self, peer: Rank) -> u64 {
        self.shared.peer_progress[peer.0].load(AtomicOrdering::Relaxed)
    }

    /// The highest iteration any peer reported via RESUME — a restarted
    /// rank's estimate of how far the mesh has advanced without it.
    pub fn mesh_progress(&self) -> u64 {
        self.shared
            .peer_progress
            .iter()
            .map(|p| p.load(AtomicOrdering::Relaxed))
            .max()
            .unwrap_or(0)
    }

    /// Aggregate supervision activity so far.
    pub fn supervision_counters(&self) -> SupervisionCounters {
        SupervisionCounters {
            heartbeats_sent: self.shared.heartbeats_sent.load(AtomicOrdering::Relaxed),
            heartbeats_received: self
                .shared
                .heartbeats_received
                .load(AtomicOrdering::Relaxed),
            reconnect_attempts: self.shared.reconnect_attempts.load(AtomicOrdering::Relaxed),
            reconnects: self.shared.reconnects.load(AtomicOrdering::Relaxed),
        }
    }

    /// Tear down every connection abruptly — no goodbye frames — so
    /// peers observe crash semantics. Test-only stand-in for SIGKILL.
    #[doc(hidden)]
    pub fn simulate_crash(&mut self) {
        for w in &self.shared.writers {
            if let Some(s) = w.lock().take() {
                let _ = s.shutdown(Shutdown::Both);
            }
        }
    }

    fn t_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    fn mark(&mut self, t_ns: u64, m: Mark) {
        let rank = self.rank.0 as u32;
        if let Some(r) = self.rec.as_deref_mut() {
            r.mark(rank, t_ns, m);
        }
    }

    /// Record a peer's disconnect exactly once. A peer that said
    /// goodbye departed cleanly; anything else is the crash-model event
    /// the recovery path consumes.
    fn note_peer_gone(&mut self, peer: Rank) {
        if self.peer_down[peer.0] {
            return;
        }
        self.peer_down[peer.0] = true;
        self.peer_suspected[peer.0] = false;
        let t_ns = self.t_ns();
        if self.peer_departed[peer.0] {
            return; // goodbye already marked the departure
        }
        self.mark(
            t_ns,
            Mark::PeerCrashed {
                peer: peer.0 as u32,
            },
        );
    }

    fn note_peer_departed(&mut self, peer: Rank) {
        if self.peer_departed[peer.0] {
            return;
        }
        self.peer_departed[peer.0] = true;
        self.peer_down[peer.0] = true;
        self.peer_suspected[peer.0] = false;
        let t_ns = self.t_ns();
        self.mark(
            t_ns,
            Mark::PeerDeparted {
                peer: peer.0 as u32,
            },
        );
    }

    fn note_peer_back(&mut self, peer: Rank) {
        let was_down = self.peer_down[peer.0];
        self.peer_down[peer.0] = false;
        self.peer_departed[peer.0] = false;
        self.peer_suspected[peer.0] = false;
        if was_down {
            let t_ns = self.t_ns();
            self.mark(
                t_ns,
                Mark::PeerRecovered {
                    peer: peer.0 as u32,
                },
            );
        }
    }

    /// Turn a mailbox event into a deliverable envelope, or consume it
    /// as a membership notification.
    fn service(&mut self, env: Envelope<SocketEvent<M>>) -> Option<Envelope<M>> {
        match env.msg {
            SocketEvent::Data(msg) => {
                self.peer_suspected[env.src.0] = false;
                Some(Envelope {
                    src: env.src,
                    tag: env.tag,
                    msg,
                })
            }
            SocketEvent::PeerGone => {
                self.note_peer_gone(env.src);
                None
            }
            SocketEvent::PeerDeparted => {
                self.note_peer_departed(env.src);
                None
            }
            SocketEvent::PeerSuspected => {
                if !self.peer_down[env.src.0] && !self.peer_suspected[env.src.0] {
                    self.peer_suspected[env.src.0] = true;
                    let t_ns = self.t_ns();
                    self.mark(
                        t_ns,
                        Mark::PeerSuspected {
                            peer: env.src.0 as u32,
                        },
                    );
                }
                None
            }
            SocketEvent::PeerBack => {
                self.note_peer_back(env.src);
                None
            }
        }
    }
}

impl<M: WireCodec + WireSize + Clone + Send + 'static> SocketTransport<M> {
    fn mark_recv(&mut self, env: &Envelope<M>) {
        if self.rec.is_some() {
            let bytes = (env.msg.wire_size() + FRAME_OVERHEAD) as u64;
            let t_ns = self.epoch.elapsed().as_nanos() as u64;
            self.mark(
                t_ns,
                Mark::MsgRecv {
                    from: env.src.0 as u32,
                    bytes,
                },
            );
        }
    }
}

impl<M: WireCodec + WireSize + Clone + Send + 'static> Transport for SocketTransport<M> {
    type Msg = M;

    fn rank(&self) -> Rank {
        self.rank
    }

    fn size(&self) -> usize {
        self.size
    }

    fn send(&mut self, to: Rank, tag: Tag, msg: M) {
        assert!(to.0 < self.size, "send to out-of-range rank {to}");
        assert_ne!(to, self.rank, "self-sends are not modelled");
        // The fault layer reasons in modelled bytes (payload + modelled
        // header), like the other backends; wire marks below use real
        // frame bytes.
        let model_bytes = msg.wire_size() + HEADER_BYTES;
        let t_now = SimTime::from_nanos(self.t_ns());
        let mut extra_copies = 0u32;
        let mut msg = msg;
        let mut flip_salt = None;
        if let Some(fs) = &self.faults {
            let ctx = MsgCtx {
                src: self.rank.0,
                dst: to.0,
                bytes: model_bytes,
                now: t_now,
            };
            let fs = Arc::clone(fs);
            let mut spec = fs.spec.lock();
            let mut fate = spec.model.fate(&ctx);
            if spec.crashes.is_down(to.0, t_now) {
                fate.deliver = false;
            }
            if !fate.deliver {
                fs.counters.lock()[self.rank.0].dropped += 1;
                let t_ns = self.t_ns();
                self.mark(
                    t_ns,
                    Mark::MsgSent {
                        to: to.0 as u32,
                        bytes: model_bytes as u64,
                    },
                );
                self.mark(
                    t_ns,
                    Mark::MessageDropped {
                        to: to.0 as u32,
                        bytes: model_bytes as u64,
                    },
                );
                return;
            }
            {
                let mut counters = fs.counters.lock();
                counters[self.rank.0].delivered += 1;
                counters[self.rank.0].duplicated += u64::from(fate.extra_copies);
            }
            extra_copies = fate.extra_copies;
            if fate.corrupt_amp > 0.0 {
                let salt = fs.salt.fetch_add(1, AtomicOrdering::Relaxed);
                match spec.corruptor.as_mut() {
                    // Payload-aware corruption, identical to the sim
                    // backend's semantics.
                    Some(c) => c(&mut msg, fate.corrupt_amp, salt),
                    // No corruptor: flip one byte of the encoded payload
                    // before the write — frame-layer corruption. The
                    // receiver either decodes a perturbed value or drops
                    // the frame as undecodable.
                    None => flip_salt = Some(salt),
                }
            }
        }

        let mut scratch = std::mem::take(&mut self.scratch);
        encode_frame(&mut scratch, KIND_DATA, self.rank.0 as u32, tag.0, &|out| {
            msg.encode(out)
        });
        if let Some(salt) = flip_salt {
            if scratch.len() > FRAME_OVERHEAD {
                let span = scratch.len() - FRAME_OVERHEAD;
                let idx = FRAME_OVERHEAD + (salt as usize) % span;
                scratch[idx] ^= 0xA5;
            }
        }

        let frame_bytes = scratch.len() as u64;
        let mut wrote = false;
        {
            let mut w = self.shared.writers[to.0].lock();
            if let Some(stream) = w.as_mut() {
                let mut ok = true;
                for _ in 0..=extra_copies {
                    if stream.write_all(&scratch).is_err() {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    wrote = true;
                } else {
                    *w = None;
                }
            }
        }
        if wrote {
            self.bytes_sent += frame_bytes * u64::from(extra_copies + 1);
        }
        self.scratch = scratch;

        let t_ns = self.t_ns();
        if !wrote {
            // The connection is gone (or already marked down): the frame
            // is lost on the floor, like a datagram to a dead host.
            self.note_peer_gone(to);
            self.mark(
                t_ns,
                Mark::MessageDropped {
                    to: to.0 as u32,
                    bytes: frame_bytes,
                },
            );
            return;
        }
        self.mark(
            t_ns,
            Mark::MsgSent {
                to: to.0 as u32,
                bytes: frame_bytes,
            },
        );
        if extra_copies > 0 {
            self.mark(
                t_ns,
                Mark::MessageDuplicated {
                    to: to.0 as u32,
                    copies: extra_copies,
                },
            );
        }
    }

    fn try_recv(&mut self) -> Option<Envelope<M>> {
        loop {
            let event = self.shared.mailbox.try_pop()?;
            if let Some(env) = self.service(event) {
                self.mark_recv(&env);
                return Some(env);
            }
        }
    }

    fn recv(&mut self) -> Envelope<M> {
        loop {
            let event = self.shared.mailbox.pop_blocking();
            if let Some(env) = self.service(event) {
                self.mark_recv(&env);
                return env;
            }
        }
    }

    fn recv_timeout(&mut self, timeout: SimDuration) -> Option<Envelope<M>> {
        // Same discipline as the thread backend: one immediate poll, a
        // zero timeout degrades to that poll, then bounded waits to one
        // absolute deadline. Membership events consume none of the
        // budget's precision — the wait resumes to the same deadline.
        if let Some(env) = self.try_recv() {
            return Some(env);
        }
        if timeout == SimDuration::ZERO {
            return None;
        }
        let armed = Instant::now();
        let deadline = armed + Duration::from_nanos(timeout.as_nanos());
        loop {
            match self.shared.mailbox.pop_deadline(deadline) {
                None => {
                    let waited_ns = armed.elapsed().as_nanos() as u64;
                    let t_ns = self.t_ns();
                    self.mark(t_ns, Mark::TimerFired { waited_ns });
                    return None;
                }
                Some(event) => {
                    if let Some(env) = self.service(event) {
                        let waited_ns = armed.elapsed().as_nanos() as u64;
                        let t_ns = self.t_ns();
                        self.mark(
                            t_ns,
                            Mark::RecvWakeup {
                                from: env.src.0 as u32,
                                waited_ns,
                            },
                        );
                        self.mark_recv(&env);
                        return Some(env);
                    }
                }
            }
        }
    }

    fn sleep(&mut self, d: SimDuration) {
        if d > SimDuration::ZERO {
            std::thread::sleep(Duration::from_nanos(d.as_nanos()));
        }
    }

    fn fault_counters(&self) -> FaultCounters {
        self.faults
            .as_ref()
            .map(|fs| fs.counters.lock()[self.rank.0])
            .unwrap_or_default()
    }

    fn compute(&mut self, ops: u64) {
        if ops == 0 {
            return;
        }
        let secs = ops as f64 / (self.opts.mips * 1e6);
        std::thread::sleep(Duration::from_secs_f64(secs));
    }

    fn now(&self) -> SimTime {
        SimTime::from_nanos(self.epoch.elapsed().as_nanos() as u64)
    }

    fn note_progress(&mut self, iter: u64) {
        self.shared.progress.store(iter, AtomicOrdering::Relaxed);
    }

    fn recorder(&mut self) -> Option<&mut (dyn Recorder + 'static)> {
        self.rec.as_deref_mut()
    }
}

impl<M> Drop for SocketTransport<M> {
    fn drop(&mut self) {
        // Stop the supervisor/acceptor first so a half-torn-down mesh
        // isn't "repaired" mid-exit.
        self.shared.shutdown.store(true, AtomicOrdering::Relaxed);
        // Announce a clean exit, then half-close every write side so
        // peer readers see goodbye + EOF promptly (in-flight data is
        // still delivered first); our own reader threads exit when
        // peers do the same.
        let mut goodbye = Vec::with_capacity(FRAME_OVERHEAD);
        encode_frame(&mut goodbye, KIND_GOODBYE, self.rank.0 as u32, 0, &|_| {});
        for w in &self.shared.writers {
            if let Some(s) = w.lock().as_mut() {
                let _ = s.write_all(&goodbye);
                let _ = s.shutdown(Shutdown::Write);
            }
        }
    }
}

/// Bind `p` loopback listeners on ephemeral ports.
fn bind_loopback(p: usize) -> std::io::Result<(Vec<TcpListener>, Vec<SocketAddr>)> {
    let mut listeners = Vec::with_capacity(p);
    let mut addrs = Vec::with_capacity(p);
    for _ in 0..p {
        let l = TcpListener::bind(("127.0.0.1", 0))?;
        addrs.push(l.local_addr()?);
        listeners.push(l);
    }
    Ok((listeners, addrs))
}

/// Run one closure per rank on `p` OS threads connected by a full mesh
/// of real loopback TCP sockets.
///
/// Mirrors [`run_thread_cluster`](crate::run_thread_cluster): same
/// closure signature, results in rank order, panics propagate. The
/// difference is that every message crosses the kernel's TCP stack.
pub fn run_socket_cluster<M, R, F>(p: usize, opts: SocketClusterOptions, f: F) -> Vec<R>
where
    M: WireCodec + WireSize + Clone + Send + 'static,
    R: Send,
    F: Fn(&mut SocketTransport<M>) -> R + Send + Sync,
{
    run_socket_cluster_inner(p, opts, None, f)
}

/// [`run_socket_cluster`] with a frame-layer fault spec shared by all
/// ranks.
///
/// Like the thread backend, fates depend on the real interleaving of
/// sends, so runs are not reproducible event-for-event; deterministic
/// *aggregates* (e.g. everything dropped under total loss) still are.
pub fn run_socket_cluster_with_faults<M, R, F>(
    p: usize,
    opts: SocketClusterOptions,
    faults: FaultSpec<M>,
    f: F,
) -> Vec<R>
where
    M: WireCodec + WireSize + Clone + Send + 'static,
    R: Send,
    F: Fn(&mut SocketTransport<M>) -> R + Send + Sync,
{
    run_socket_cluster_inner(p, opts, Some(Arc::new(SocketFaults::new(faults, p))), f)
}

fn run_socket_cluster_inner<M, R, F>(
    p: usize,
    opts: SocketClusterOptions,
    faults: Option<Arc<SocketFaults<M>>>,
    f: F,
) -> Vec<R>
where
    M: WireCodec + WireSize + Clone + Send + 'static,
    R: Send,
    F: Fn(&mut SocketTransport<M>) -> R + Send + Sync,
{
    assert!(p >= 1, "need at least one rank");
    let (listeners, addrs) = bind_loopback(p).expect("binding loopback listeners failed");
    let epoch = Instant::now();
    std::thread::scope(|s| {
        let handles: Vec<_> = listeners
            .into_iter()
            .enumerate()
            .map(|(r, listener)| {
                let addrs = addrs.clone();
                let opts = opts.clone();
                let faults = faults.clone();
                let f = &f;
                s.spawn(move || {
                    let mut t =
                        SocketTransport::establish(r, listener, &addrs, opts, faults, epoch)
                            .expect("socket mesh handshake failed");
                    f(&mut t)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rank thread panicked"))
            .collect()
    })
}

/// Join a multi-process socket cluster as `rank`, binding `addrs[rank]`
/// locally and meshing with the other processes (which must run the same
/// call with their own rank).
///
/// This is the entrypoint `examples/socket_cluster.rs --rank N --peers …`
/// uses to run one rank per terminal; the returned transport is the same
/// type the loopback runner hands its closures.
pub fn connect_socket_cluster<M>(
    rank: usize,
    addrs: &[SocketAddr],
    opts: SocketClusterOptions,
) -> std::io::Result<SocketTransport<M>>
where
    M: WireCodec + Send + 'static,
{
    assert!(
        rank < addrs.len(),
        "rank {rank} out of range for {} peers",
        addrs.len()
    );
    let listener = TcpListener::bind(addrs[rank])?;
    SocketTransport::establish(rank, listener, addrs, opts, None, Instant::now())
}

/// [`connect_socket_cluster`] with a process-local fault spec (each
/// process draws its own fates for the frames it sends).
pub fn connect_socket_cluster_with_faults<M>(
    rank: usize,
    addrs: &[SocketAddr],
    opts: SocketClusterOptions,
    faults: FaultSpec<M>,
) -> std::io::Result<SocketTransport<M>>
where
    M: WireCodec + Send + 'static,
{
    assert!(
        rank < addrs.len(),
        "rank {rank} out of range for {} peers",
        addrs.len()
    );
    let p = addrs.len();
    let listener = TcpListener::bind(addrs[rank])?;
    SocketTransport::establish(
        rank,
        listener,
        addrs,
        opts,
        Some(Arc::new(SocketFaults::new(faults, p))),
        Instant::now(),
    )
}

/// Re-enter an already-running mesh as a restarted `rank`.
///
/// Binds `addrs[rank]`, re-dials every *lower* rank with a RESUME
/// handshake carrying `last_iter` (the furthest iteration this process
/// had confirmed before it died, 0 for a cold restart), and waits up to
/// `opts.connect_timeout` for every *higher* rank's supervisor to
/// re-dial us — the same rank-ordered induction as cold start, so rejoin
/// cannot deadlock against it. Requires the surviving peers to be
/// running with supervision enabled (their acceptors admit us); our own
/// supervisor/acceptor are spawned with `opts.supervision`
/// (or defaults if unset, since a rejoining rank must accept redials).
///
/// Returns once the mesh is fully re-established, or with however many
/// connections came up when the timeout expires — the fault-tolerant
/// driver handles a partial mesh the same way it handles crashed peers.
pub fn rejoin_socket_cluster<M>(
    rank: usize,
    addrs: &[SocketAddr],
    opts: SocketClusterOptions,
    last_iter: u64,
) -> std::io::Result<SocketTransport<M>>
where
    M: WireCodec + Send + 'static,
{
    assert!(
        rank < addrs.len(),
        "rank {rank} out of range for {} peers",
        addrs.len()
    );
    let size = addrs.len();
    let listener = TcpListener::bind(addrs[rank])?;
    let epoch = Instant::now();
    let shared = Arc::new(Shared::<M>::new(rank, size, opts.max_frame_bytes, epoch));
    shared.progress.store(last_iter, AtomicOrdering::Relaxed);

    // Re-dial our original dialees (every lower rank). They are alive
    // and listening, so retry within the connect timeout covers slow
    // accept loops, not cold starts.
    let deadline = Instant::now() + opts.connect_timeout;
    for (peer, &addr) in addrs.iter().enumerate().take(rank) {
        let mut bo = Backoff::new(
            Duration::from_millis(5),
            Duration::from_millis(250),
            (rank as u64) << 16 | peer as u64,
        );
        loop {
            match resume_dial(&shared, peer, addr, opts.nodelay) {
                Ok(s) => {
                    install_connection(&shared, peer, s)?;
                    shared.reconnects.fetch_add(1, AtomicOrdering::Relaxed);
                    break;
                }
                Err(e) => {
                    let now = Instant::now();
                    if now >= deadline {
                        return Err(std::io::Error::new(
                            ErrorKind::TimedOut,
                            format!("resume dial to rank {peer} timed out: {e}"),
                        ));
                    }
                    std::thread::sleep(bo.next_delay().min(deadline - now));
                }
            }
        }
    }

    let sup = opts.supervision.clone().unwrap_or_default();
    let poll = sup.heartbeat_interval;
    spawn_acceptor(Arc::clone(&shared), listener, poll, opts.nodelay);
    spawn_supervisor(Arc::clone(&shared), sup, addrs.to_vec(), opts.nodelay);

    // Higher ranks re-dial us via their supervisors; wait (bounded) for
    // the mesh to fill in before handing the transport to the driver.
    while Instant::now() < deadline {
        let missing = (rank + 1..size).any(|p| shared.writers[p].lock().is_none());
        if !missing {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }

    let mut t = SocketTransport {
        rank: Rank(rank),
        size,
        opts,
        shared,
        epoch,
        rec: None,
        faults: None,
        bytes_sent: 0,
        peer_down: vec![false; size],
        peer_departed: vec![false; size],
        peer_suspected: vec![false; size],
        scratch: Vec::new(),
    };
    // Peers whose connection is still absent start in the down state so
    // sends are dropped quietly and recovery marks fire on arrival.
    for p in 0..size {
        if p != rank && t.shared.writers[p].lock().is_none() {
            t.peer_down[p] = true;
            t.peer_departed[p] = true; // suppress a spurious crash mark
        }
    }
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::{Loss, NoFaults};

    fn supervised(interval_ms: u64, miss_ms: u64) -> SocketClusterOptions {
        SocketClusterOptions {
            supervision: Some(SupervisorOptions {
                heartbeat_interval: Duration::from_millis(interval_ms),
                miss_deadline: Duration::from_millis(miss_ms),
                ..SupervisorOptions::default()
            }),
            ..SocketClusterOptions::default()
        }
    }

    #[test]
    fn ranks_and_size_are_correct() {
        let ids = run_socket_cluster::<u64, _, _>(3, SocketClusterOptions::default(), |t| {
            (t.rank().0, t.size())
        });
        assert_eq!(ids, vec![(0, 3), (1, 3), (2, 3)]);
    }

    #[test]
    fn messages_arrive_with_content_intact() {
        let sums = run_socket_cluster::<u64, _, _>(4, SocketClusterOptions::default(), |t| {
            t.broadcast(Tag(0), 10 + t.rank().0 as u64);
            (0..t.size() - 1).map(|_| t.recv().msg).sum::<u64>()
        });
        let total: u64 = 10 + 11 + 12 + 13;
        for (me, s) in sums.iter().enumerate() {
            assert_eq!(*s, total - (10 + me as u64));
        }
    }

    #[test]
    fn vec_payloads_round_trip_through_the_wire() {
        let got = run_socket_cluster::<Vec<f64>, _, _>(2, SocketClusterOptions::default(), |t| {
            if t.rank().0 == 0 {
                t.send(Rank(1), Tag(7), vec![1.5, -2.25, f64::MAX]);
                Vec::new()
            } else {
                let env = t.recv();
                assert_eq!(env.src, Rank(0));
                assert_eq!(env.tag, Tag(7));
                env.msg
            }
        });
        assert_eq!(got[1], vec![1.5, -2.25, f64::MAX]);
    }

    #[test]
    fn per_pair_fifo_order_is_preserved() {
        let got = run_socket_cluster::<u64, _, _>(2, SocketClusterOptions::default(), |t| {
            if t.rank().0 == 0 {
                for i in 0..100 {
                    t.send(Rank(1), Tag(0), i);
                }
                Vec::new()
            } else {
                (0..100).map(|_| t.recv().msg).collect::<Vec<_>>()
            }
        });
        assert_eq!(got[1], (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn bytes_on_wire_match_between_sender_and_receiver() {
        let counts =
            run_socket_cluster::<Vec<f64>, _, _>(2, SocketClusterOptions::default(), |t| {
                if t.rank().0 == 0 {
                    for _ in 0..5 {
                        t.send(Rank(1), Tag(0), vec![0.5; 16]);
                    }
                    // Wait for the ack so the byte counters are settled.
                    let _ = t.recv();
                    t.bytes_on_wire()
                } else {
                    for _ in 0..5 {
                        let _ = t.recv();
                    }
                    t.send(Rank(0), Tag(1), vec![]);
                    t.bytes_on_wire()
                }
            });
        let (sent0, _) = counts[0];
        let (_, recv1) = counts[1];
        // 5 frames of (8-byte length prefix for the vec + 16 f64s) plus
        // framing overhead.
        let expected = 5 * (FRAME_OVERHEAD as u64 + 8 + 16 * 8);
        assert_eq!(sent0, expected);
        assert_eq!(recv1, expected);
    }

    #[test]
    fn socket_recv_timeout_expires_on_silence() {
        let results = run_socket_cluster::<u8, _, _>(2, SocketClusterOptions::default(), |t| {
            if t.rank().0 == 0 {
                // Keep the cluster alive while rank 1's timer runs.
                let got = t.recv_timeout(SimDuration::from_millis(500));
                got.is_some()
            } else {
                let before = t.timed_waits();
                let got = t.recv_timeout(SimDuration::from_millis(20));
                assert!(got.is_none(), "nothing was sent");
                assert!(t.timed_waits() > before, "wait did not block on condvar");
                t.send(Rank(0), Tag(0), 1);
                true
            }
        });
        assert!(results[0] && results[1]);
    }

    #[test]
    fn socket_recv_timeout_delivers_when_a_message_is_in_flight() {
        let results = run_socket_cluster::<u64, _, _>(2, SocketClusterOptions::default(), |t| {
            if t.rank().0 == 0 {
                t.send(Rank(1), Tag(0), 42);
                0
            } else {
                t.recv_timeout(SimDuration::from_millis(5_000))
                    .expect("message should arrive before the timeout")
                    .msg
            }
        });
        assert_eq!(results[1], 42);
    }

    #[test]
    fn total_loss_drops_every_frame() {
        let results = run_socket_cluster_with_faults::<u64, _, _>(
            2,
            SocketClusterOptions::default(),
            FaultSpec::new(Loss::new(1.0, 7)),
            |t| {
                if t.rank().0 == 0 {
                    for i in 0..5 {
                        t.send(Rank(1), Tag(0), i);
                    }
                    t.fault_counters().dropped
                } else {
                    let got = t.recv_timeout(SimDuration::from_millis(20));
                    assert!(got.is_none(), "total loss delivered a message");
                    0
                }
            },
        );
        assert_eq!(results[0], 5);
    }

    #[test]
    fn frame_corruption_without_corruptor_drops_or_perturbs() {
        use netsim::Corrupt;
        // Corrupt every frame; bool payloads make every flipped byte a
        // decode failure, so all frames must be dropped at the receiver.
        let results = run_socket_cluster_with_faults::<bool, _, _>(
            2,
            SocketClusterOptions::default(),
            FaultSpec::new(Corrupt::new(1.0, 1.0, 3)),
            |t| {
                if t.rank().0 == 0 {
                    for _ in 0..4 {
                        t.send(Rank(1), Tag(0), true);
                    }
                    // Give frames time to arrive and be rejected.
                    let got = t.recv_timeout(SimDuration::from_millis(200));
                    got.is_none() as u64
                } else {
                    let got = t.recv_timeout(SimDuration::from_millis(100));
                    assert!(got.is_none(), "corrupt bool frame decoded");
                    t.decode_failures()
                }
            },
        );
        assert_eq!(results[1], 4, "every corrupted frame must be rejected");
    }

    #[test]
    fn peer_disconnect_surfaces_as_crash_event_not_panic() {
        // Rank 0 tears its sockets down without a goodbye (a simulated
        // SIGKILL). Rank 1 must observe the disconnect as a crash-model
        // event: bounded waits keep expiring, nothing panics, and the
        // peer shows up in disconnected_peers() but not departed_peers().
        let results = run_socket_cluster::<u8, _, _>(2, SocketClusterOptions::default(), |t| {
            if t.rank().0 == 0 {
                t.simulate_crash();
                0
            } else {
                // Survive an arbitrary number of bounded waits across the
                // peer's death.
                let mut waits = 0u64;
                for _ in 0..50 {
                    if t.recv_timeout(SimDuration::from_millis(10)).is_some() {
                        panic!("no message was ever sent");
                    }
                    waits += 1;
                    if !t.disconnected_peers().is_empty() {
                        break;
                    }
                }
                assert_eq!(t.disconnected_peers(), vec![Rank(0)]);
                assert!(t.departed_peers().is_empty(), "no goodbye was sent");
                // Sending into the void must not panic either.
                t.send(Rank(0), Tag(0), 9);
                waits
            }
        });
        assert!(results[1] >= 1);
    }

    #[test]
    fn clean_shutdown_departs_without_crash_semantics() {
        // Rank 0 exits normally; its Drop writes a goodbye frame, so
        // rank 1 records a departure, not a crash.
        let results = run_socket_cluster::<u8, _, _>(2, SocketClusterOptions::default(), |t| {
            if t.rank().0 == 0 {
                true
            } else {
                for _ in 0..200 {
                    let _ = t.recv_timeout(SimDuration::from_millis(10));
                    if !t.departed_peers().is_empty() {
                        break;
                    }
                }
                assert_eq!(t.departed_peers(), vec![Rank(0)]);
                assert_eq!(t.disconnected_peers(), vec![Rank(0)]);
                true
            }
        });
        assert!(results[0] && results[1]);
    }

    #[test]
    fn oversized_length_prefix_is_rejected_not_allocated() {
        // A hostile 3.9 GiB length prefix must surface as InvalidData
        // from read_frame, never reach the allocator.
        let l = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = l.local_addr().unwrap();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&0xEFFF_FFFFu32.to_le_bytes()).unwrap();
            s.write_all(&[0u8; 32]).unwrap();
            s
        });
        let (mut conn, _) = l.accept().unwrap();
        let err = read_frame(&mut conn, DEFAULT_MAX_FRAME).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::InvalidData);
        // A tight per-cluster cap rejects even modest frames.
        let l2 = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr2 = l2.local_addr().unwrap();
        let w2 = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr2).unwrap();
            let mut frame = Vec::new();
            encode_frame(&mut frame, KIND_DATA, 0, 0, &|out| {
                out.extend_from_slice(&[7u8; 1024]);
            });
            s.write_all(&frame).unwrap();
            s
        });
        let (mut conn2, _) = l2.accept().unwrap();
        let err2 = read_frame(&mut conn2, 128).unwrap_err();
        assert_eq!(err2.kind(), ErrorKind::InvalidData);
        drop(writer.join().unwrap());
        drop(w2.join().unwrap());
    }

    #[test]
    fn connect_with_retry_gives_up_within_the_deadline() {
        // Grab an ephemeral port, then free it so nothing is listening.
        let l = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = l.local_addr().unwrap();
        drop(l);
        let timeout = Duration::from_millis(150);
        let started = Instant::now();
        let err = connect_with_retry(addr, timeout, 9).unwrap_err();
        let elapsed = started.elapsed();
        assert_eq!(err.kind(), ErrorKind::TimedOut);
        // Bounded: one backoff sleep past the deadline at most, plus
        // scheduler slack.
        assert!(
            elapsed < timeout + Duration::from_millis(400),
            "gave up after {elapsed:?}, deadline was {timeout:?}"
        );
    }

    #[test]
    fn heartbeats_flow_and_keep_idle_peers_unsuspected() {
        let counters = run_socket_cluster::<u8, _, _>(2, supervised(5, 60), |t| {
            // Both ranks stay silent at the data layer; heartbeats alone
            // must keep the mesh unsuspicious.
            let deadline = Instant::now() + Duration::from_millis(250);
            while Instant::now() < deadline {
                let _ = t.recv_timeout(SimDuration::from_millis(20));
            }
            assert!(t.suspected_peers().is_empty(), "heartbeats were missed");
            // The peer may already have finished its loop and departed
            // cleanly (goodbye); only a crash-style disconnect is a failure.
            let departed = t.departed_peers();
            assert!(
                t.disconnected_peers().iter().all(|r| departed.contains(r)),
                "peer dropped without a goodbye"
            );
            t.supervision_counters()
        });
        for c in &counters {
            assert!(c.heartbeats_sent > 0, "supervisor sent no heartbeats");
            assert!(c.heartbeats_received > 0, "no heartbeats arrived");
        }
    }

    #[test]
    fn silent_peer_is_suspected_before_any_disconnect() {
        // Rank 0 supervises; rank 1 runs *without* supervision so it
        // sends no heartbeats and no data — silence on a live socket,
        // the case EOF-based detection can never catch.
        let l0 = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let l1 = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addrs = [l0.local_addr().unwrap(), l1.local_addr().unwrap()];
        drop((l0, l1));
        let h0 = std::thread::spawn(move || {
            let mut t = connect_socket_cluster::<u8>(0, &addrs, supervised(5, 40)).unwrap();
            let deadline = Instant::now() + Duration::from_secs(2);
            while Instant::now() < deadline && t.suspected_peers().is_empty() {
                let _ = t.recv_timeout(SimDuration::from_millis(10));
            }
            let suspected = t.suspected_peers();
            t.send(Rank(1), Tag(0), 1); // release rank 1
            suspected
        });
        let h1 = std::thread::spawn(move || {
            let mut t =
                connect_socket_cluster::<u8>(1, &addrs, SocketClusterOptions::default()).unwrap();
            t.recv().msg
        });
        assert_eq!(h0.join().unwrap(), vec![Rank(1)]);
        assert_eq!(h1.join().unwrap(), 1);
    }

    #[test]
    fn garbage_dialers_during_cold_start_are_rejected_not_fatal() {
        // Peer-controlled input at the worst moment: establish's accept
        // phase. Each junk connection must be dropped and counted, and
        // the mesh must still come up once the real peer dials.
        let l0 = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let l1 = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addrs = [l0.local_addr().unwrap(), l1.local_addr().unwrap()];
        drop((l0, l1));
        let h0 = std::thread::spawn(move || {
            let mut t =
                connect_socket_cluster::<u64>(0, &addrs, SocketClusterOptions::default()).unwrap();
            let env = t.recv();
            (env.msg, t.handshake_rejects())
        });
        // Junk flavour 1: connect and EOF before sending any HELLO.
        let s = TcpStream::connect(addrs[0]).unwrap();
        s.shutdown(Shutdown::Both).unwrap();
        drop(s);
        // Junk flavour 2: a well-formed HELLO claiming an impossible
        // rank (rank 0 itself), then linger so the reject is observed
        // before the real peer's HELLO enters the queue.
        let mut s = TcpStream::connect(addrs[0]).unwrap();
        write_hello(&mut s, 0, 2).unwrap();
        std::thread::sleep(Duration::from_millis(50));
        drop(s);
        // The real rank 1 arrives last and must still be admitted.
        let h1 = std::thread::spawn(move || {
            let mut t =
                connect_socket_cluster::<u64>(1, &addrs, SocketClusterOptions::default()).unwrap();
            t.send(Rank(0), Tag(0), 77);
            // Linger so the frame flushes before drop.
            let _ = t.recv_timeout(SimDuration::from_millis(100));
        });
        let (msg, rejects) = h0.join().unwrap();
        h1.join().unwrap();
        assert_eq!(msg, 77, "real peer was not admitted after junk dialers");
        assert!(
            rejects >= 1,
            "junk handshakes were not counted (got {rejects})"
        );
    }

    #[test]
    fn peer_dying_mid_frame_does_not_panic_the_survivor() {
        // A peer that completes the handshake, starts a data frame, and
        // dies mid-frame: the survivor's reader must surface a crash
        // (PeerGone → disconnected_peers), never a panic, and the
        // truncated frame must never reach the decoder.
        let l0 = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let l1 = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addrs = [l0.local_addr().unwrap(), l1.local_addr().unwrap()];
        drop((l0, l1));
        let h0 = std::thread::spawn(move || {
            let mut t = connect_socket_cluster::<u64>(0, &addrs, supervised(5, 40)).unwrap();
            let deadline = Instant::now() + Duration::from_secs(5);
            while Instant::now() < deadline && !t.disconnected_peers().contains(&Rank(1)) {
                let got = t.recv_timeout(SimDuration::from_millis(10));
                assert!(got.is_none(), "a truncated frame must not deliver");
            }
            (t.disconnected_peers(), t.decode_failures())
        });
        // Fake rank 1: real HELLO handshake, then a frame whose length
        // prefix promises 64 bytes but whose body stops after the
        // version byte, then an abrupt close.
        let mut s = TcpStream::connect(addrs[0]).unwrap();
        write_hello(&mut s, 1, 2).unwrap();
        assert_eq!(read_hello(&mut s, 2, DEFAULT_MAX_FRAME).unwrap(), 0);
        s.write_all(&64u32.to_le_bytes()).unwrap();
        s.write_all(&[WIRE_VERSION]).unwrap();
        s.shutdown(Shutdown::Both).unwrap();
        drop(s);
        let (down, decode_failures) = h0.join().unwrap();
        assert_eq!(down, vec![Rank(1)], "mid-frame death was not surfaced");
        assert_eq!(
            decode_failures, 0,
            "truncated frame must die in read_frame, not the decoder"
        );
    }

    #[test]
    fn restarted_rank_rejoins_the_mesh_with_resume_handshake() {
        let mut ls: Vec<TcpListener> = (0..3)
            .map(|_| TcpListener::bind(("127.0.0.1", 0)).unwrap())
            .collect();
        let addrs: Vec<SocketAddr> = ls.iter().map(|l| l.local_addr().unwrap()).collect();
        ls.clear();
        let a0 = addrs.clone();
        let a1 = addrs.clone();
        let a2 = addrs.clone();

        // Rank 0: survive, observe the crash, then receive post-rejoin
        // data and the peer's resumed progress.
        let h0 = std::thread::spawn(move || {
            let mut t = connect_socket_cluster::<u64>(0, &a0, supervised(5, 80)).unwrap();
            // Wait for rank 2's crash...
            let deadline = Instant::now() + Duration::from_secs(5);
            while Instant::now() < deadline && !t.disconnected_peers().contains(&Rank(2)) {
                let _ = t.recv_timeout(SimDuration::from_millis(10));
            }
            assert!(t.disconnected_peers().contains(&Rank(2)), "crash unseen");
            // ...then for its rejoin (RESUME dial lands on our acceptor)
            // and the post-rejoin message.
            let mut got = None;
            let deadline = Instant::now() + Duration::from_secs(5);
            while Instant::now() < deadline {
                if let Some(env) = t.recv_timeout(SimDuration::from_millis(10)) {
                    if env.src == Rank(2) {
                        got = Some(env.msg);
                        break;
                    }
                }
            }
            (got, t.peer_progress(Rank(2)), t.disconnected_peers())
        });
        // Rank 1: just keep the mesh alive.
        let h1 = std::thread::spawn(move || {
            let mut t = connect_socket_cluster::<u64>(1, &a1, supervised(5, 80)).unwrap();
            let deadline = Instant::now() + Duration::from_secs(10);
            let mut heard_back = false;
            while Instant::now() < deadline {
                if let Some(env) = t.recv_timeout(SimDuration::from_millis(10)) {
                    if env.src == Rank(2) && env.msg == 99 {
                        heard_back = true;
                        break;
                    }
                }
            }
            heard_back
        });
        // Rank 2: join, crash without goodbye, rejoin with progress 7,
        // then broadcast.
        let h2 = std::thread::spawn(move || {
            let mut t = connect_socket_cluster::<u64>(2, &a2, supervised(5, 80)).unwrap();
            t.simulate_crash();
            drop(t);
            std::thread::sleep(Duration::from_millis(100));
            let mut t = rejoin_socket_cluster::<u64>(2, &a2, supervised(5, 80), 7).unwrap();
            t.send(Rank(0), Tag(0), 99);
            t.send(Rank(1), Tag(0), 99);
            // Linger so the frames flush before drop.
            let _ = t.recv_timeout(SimDuration::from_millis(100));
            t.supervision_counters().reconnects
        });
        let (got, progress, down) = h0.join().unwrap();
        assert_eq!(got, Some(99), "post-rejoin data did not arrive");
        assert_eq!(progress, 7, "RESUME did not carry the peer's progress");
        assert!(!down.contains(&Rank(2)), "rejoin did not clear down state");
        assert!(h1.join().unwrap(), "rank 1 never heard the rejoined peer");
        assert!(h2.join().unwrap() >= 1, "rejoin made no connections");
    }

    #[test]
    fn multi_process_entrypoint_meshes_two_ranks() {
        // Exercise connect_socket_cluster the way two separate processes
        // would, using two plain threads with pre-agreed ports.
        let l0 = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let l1 = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addrs = [l0.local_addr().unwrap(), l1.local_addr().unwrap()];
        drop((l0, l1)); // free the ports for connect_socket_cluster to rebind
        let h0 = std::thread::spawn(move || {
            let mut t =
                connect_socket_cluster::<u64>(0, &addrs, SocketClusterOptions::default()).unwrap();
            t.send(Rank(1), Tag(0), 11);
            t.recv().msg
        });
        let h1 = std::thread::spawn(move || {
            let mut t =
                connect_socket_cluster::<u64>(1, &addrs, SocketClusterOptions::default()).unwrap();
            let got = t.recv().msg;
            t.send(Rank(0), Tag(0), got + 1);
            got
        });
        assert_eq!(h1.join().unwrap(), 11);
        assert_eq!(h0.join().unwrap(), 12);
    }

    #[test]
    fn no_faults_spec_behaves_like_fault_free() {
        let got = run_socket_cluster_with_faults::<u64, _, _>(
            2,
            SocketClusterOptions::default(),
            FaultSpec::new(NoFaults),
            |t| {
                if t.rank().0 == 0 {
                    t.send(Rank(1), Tag(0), 5);
                    t.fault_counters().delivered
                } else {
                    t.recv().msg
                }
            },
        );
        assert_eq!(got, vec![1, 5]);
    }
}
