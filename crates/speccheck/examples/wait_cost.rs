//! Measures what the event-driven bounded wait costs versus the
//! reference polling implementation it replaced ([`PolledRecv`]), on
//! both backends. The "event-driven delivery" appendix in
//! `EXPERIMENTS.md` records one run of this example.
//!
//! Run with: `cargo run --release -p speccheck --example wait_cost`

use std::time::Instant;

use desim::{SimDuration, TieBreak};
use mpk::{
    run_sim_cluster_with_options, run_thread_cluster, SimClusterOptions, ThreadClusterOptions,
    Transport,
};
use speccheck::{drive_synthetic, DriverMode, FaultScenario, PolledRecv, SyntheticScenario};
use speccore::{IterMsg, SpecConfig};

const THETA: f64 = 0.1;

fn scenario() -> (SyntheticScenario, DriverMode, FaultScenario) {
    let sc = SyntheticScenario {
        p: 4,
        n: 32,
        iters: 8,
        mips: 20.0,
        ramp: 0.5,
        latency_us: 1_000,
        jitter_frac: 0.0,
        jump_prob: 0.0,
        delta_floor: 0.0,
        delta_keyframe: 1,
        seed: 42,
    };
    let fault = FaultScenario {
        loss_prob: 0.1,
        dup_prob: 0.0,
        seed: 7,
        timeout_ms: 40,
    };
    let cfg = SpecConfig::speculative(2).with_fault_tolerance(fault.tolerance());
    (sc, DriverMode::Speculative(cfg), fault)
}

/// One simulated FT run over a lossy network; prints the kernel's event
/// accounting so the two wait implementations can be compared directly.
fn sim_run(label: &str, polled: bool) {
    let (sc, mode, fault) = scenario();
    let inner_sc = sc.clone();
    let inner_mode = mode.clone();
    let (outs, report) = run_sim_cluster_with_options::<IterMsg<Vec<f64>>, _, _>(
        &sc.cluster(),
        sc.net(),
        netsim::Unloaded,
        fault.build(),
        SimClusterOptions {
            tie_break: TieBreak::Fifo,
            ..Default::default()
        },
        move |t| {
            if polled {
                let mut p = PolledRecv(t);
                drive_synthetic(&mut p, &inner_sc, THETA, &inner_mode)
            } else {
                drive_synthetic(t, &inner_sc, THETA, &inner_mode)
            }
        },
    )
    .expect("scenario must complete");
    let lost: u64 = outs.iter().map(|(_, s)| s.messages_lost).sum();
    let commits: u64 = outs
        .iter()
        .map(|(_, s)| s.speculate_through_loss_commits)
        .sum();
    println!(
        "sim {label:<13} events={:>5} timers_fired={:>3} delivered={:>3} \
         end_time={:.3}s lost={lost} loss_commits={commits}",
        report.events_processed,
        report.timers_fired,
        report.messages_delivered,
        report.end_time.as_secs_f64(),
    );
}

fn main() {
    // Simulated backend: identical lossy scenario (p=4, 8 iterations,
    // 10% loss, 40 ms timeout), event-driven wait vs polling reference.
    sim_run("event-driven:", false);
    sim_run("polled (ref):", true);

    // Thread backend: the raw cost of an *expired* bounded wait — 20
    // back-to-back 5 ms timeouts on an empty mailbox. Event-driven
    // blocks once per wait (counted by the transport); the polling
    // reference sleeps 16 quanta per wait by construction.
    const WAITS: u64 = 20;
    let start = Instant::now();
    let blocks = run_thread_cluster::<u8, _, _>(1, ThreadClusterOptions::default(), |t| {
        for _ in 0..WAITS {
            assert!(t.recv_timeout(SimDuration::from_millis(5)).is_none());
        }
        t.timed_waits()
    });
    let event_wall = start.elapsed();
    let start = Instant::now();
    run_thread_cluster::<u8, _, _>(1, ThreadClusterOptions::default(), |t| {
        let mut p = PolledRecv(t);
        for _ in 0..WAITS {
            assert!(p.recv_timeout(SimDuration::from_millis(5)).is_none());
        }
    });
    let polled_wall = start.elapsed();
    println!(
        "thread event-driven: {WAITS} expired waits -> {} blocks, wall {:.1} ms",
        blocks[0],
        event_wall.as_secs_f64() * 1e3,
    );
    println!(
        "thread polled (ref): {WAITS} expired waits -> {} sleeps, wall {:.1} ms",
        WAITS * 16,
        polled_wall.as_secs_f64() * 1e3,
    );
}
