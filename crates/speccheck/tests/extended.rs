//! Extended conformance sweeps, ignored by default.
//!
//! `ci.sh` runs the default suites at 64 cases per property with the
//! shim's fixed per-test seeds. Nightly (or any paranoid) runs add
//!
//! ```text
//! cargo test -q -p speccheck -- --ignored
//! ```
//!
//! for 1024 cases per property, plus a randomly seeded sweep whose seed
//! is printed on stderr (`SPECCHECK_SWEEP_SEED=<hex>` replays it).

use desim::TieBreak;
use proptest::prelude::*;
use proptest::{ProptestConfig, TestRng};
use speccheck::oracles::phase_partition;
use speccheck::{exact_spec_params, run_sim, synthetic_scenario, DriverMode};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(1024))]

    /// 1024-case deepening of the headline θ = 0 equivalence.
    #[test]
    #[ignore = "extended sweep: run with --ignored (nightly)"]
    fn extended_theta_zero_recompute_equals_baseline(
        sc in synthetic_scenario(),
        params in exact_spec_params(),
    ) {
        let spec = run_sim(&sc, params.theta, &DriverMode::from_params(&params), TieBreak::Fifo);
        let base = run_sim(&sc, params.theta, &DriverMode::Baseline, TieBreak::Fifo);
        prop_assert_eq!(&spec.fingerprints, &base.fingerprints);
    }

    /// 1024-case deepening of exhaustive phase accounting.
    #[test]
    #[ignore = "extended sweep: run with --ignored (nightly)"]
    fn extended_phases_partition_total_time(
        sc in synthetic_scenario(),
        params in exact_spec_params(),
    ) {
        let out = run_sim(&sc, params.theta, &DriverMode::from_params(&params), TieBreak::Fifo);
        for s in &out.stats {
            let check = phase_partition(s);
            prop_assert!(check.is_ok(), "{}", check.unwrap_err());
        }
    }
}

/// Randomly seeded sweep: unlike the fixed-seed properties above, every
/// nightly run explores a *fresh* region of scenario space. The seed is
/// taken from `SPECCHECK_SWEEP_SEED` (hex, `0x` optional) when set, else
/// from the wall clock, and is always printed so a failure is
/// replayable.
#[test]
#[ignore = "extended sweep: run with --ignored (nightly)"]
fn extended_random_seed_sweep() {
    let seed = std::env::var("SPECCHECK_SWEEP_SEED")
        .ok()
        .and_then(|s| u64::from_str_radix(s.trim().trim_start_matches("0x"), 16).ok())
        .unwrap_or_else(|| {
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .expect("clock before epoch")
                .as_nanos() as u64
        });
    eprintln!("extended_random_seed_sweep seed: {seed:#018x} (replay with SPECCHECK_SWEEP_SEED={seed:#x})");

    let mut rng = TestRng::from_state(seed);
    for case in 0..1024u32 {
        let sc = synthetic_scenario().sample(&mut rng);
        let params = exact_spec_params().sample(&mut rng);
        let mode = DriverMode::from_params(&params);
        let spec = run_sim(&sc, params.theta, &mode, TieBreak::Fifo);
        let base = run_sim(&sc, params.theta, &DriverMode::Baseline, TieBreak::Fifo);
        assert_eq!(
            spec.fingerprints, base.fingerprints,
            "case {case} (sweep seed {seed:#018x}): θ=0+recompute diverged from baseline on {sc:?} / {params:?}"
        );
        for s in &spec.stats {
            phase_partition(s).unwrap_or_else(|e| {
                panic!("case {case} (sweep seed {seed:#018x}): {e} on {sc:?} / {params:?}")
            });
        }
    }
}
