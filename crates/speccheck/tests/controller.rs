//! Conformance properties for the adaptive speculation controller.
//!
//! The controller's contract has three layers, each pinned here:
//!
//! * **Inertness** — `controller: None` is the constructor default, and an
//!   attached-but-dormant controller (warmup beyond the run length) never
//!   evaluates a decision, so it must be bit-inert: identical
//!   fingerprints, identical virtual timing, zero controller counters.
//! * **Exactness under the exact anchor** — a θ grid pinned to `{0.0}`
//!   with recompute correction keeps *every* decision sequence exact, so
//!   the controller may retune the window freely and the run must still be
//!   bit-identical to the blocking baseline — on the simulator and across
//!   the sim/thread backend pair (whose wall-clock waits drive genuinely
//!   different decision sequences).
//! * **Convergence** — under a stationary delay the chosen window
//!   stabilizes and lands within one grid step of the best fixed window
//!   found by an offline sweep, and adaptive deadlines tighten a
//!   pessimistic static loss timeout enough to beat it under real loss.

use desim::TieBreak;
use proptest::prelude::*;
use speccheck::{
    exact_spec_params, run_sim, run_sim_with_faults, run_thread, spec_params, synthetic_scenario,
    DriverMode, SpecParams, SyntheticScenario,
};
use speccore::{ControllerConfig, CorrectionMode, FaultTolerance, SpecConfig};

/// The grid point's config with an adaptive controller attached.
fn adaptive_mode(params: &SpecParams, ctl: ControllerConfig) -> DriverMode {
    DriverMode::Speculative(params.build().with_adaptive(ctl))
}

/// A controller that retunes early and often, with the exact θ anchor as
/// its only grid point: every decision it can make preserves exact
/// semantics when paired with recompute correction.
fn exact_anchor_controller() -> ControllerConfig {
    ControllerConfig::new()
        .with_theta_grid(vec![0.0])
        .with_cadence(2, 1)
        .with_fw_max(4)
}

proptest! {
    /// An attached-but-dormant controller (warmup beyond the run length)
    /// is bit-inert across the whole configuration grid: fingerprints,
    /// virtual end time, and every stat match the controller-less run,
    /// and the controller counters stay zero.
    #[test]
    fn dormant_controller_is_bit_inert(
        sc in synthetic_scenario(),
        params in spec_params(),
    ) {
        let plain = run_sim(&sc, params.theta, &DriverMode::from_params(&params), TieBreak::Fifo);
        let dormant = ControllerConfig::new().with_cadence(1_000_000, 1);
        let ctl = run_sim(&sc, params.theta, &adaptive_mode(&params, dormant), TieBreak::Fifo);
        prop_assert_eq!(&plain.fingerprints, &ctl.fingerprints);
        prop_assert_eq!(plain.elapsed, ctl.elapsed);
        for (a, b) in plain.stats.iter().zip(&ctl.stats) {
            prop_assert_eq!(a.iterations, b.iterations);
            prop_assert_eq!(a.speculated_partitions, b.speculated_partitions);
            prop_assert_eq!(a.misspeculated_partitions, b.misspeculated_partitions);
            prop_assert_eq!(a.rollbacks, b.rollbacks);
            prop_assert_eq!(b.controller_retunes, 0);
            prop_assert_eq!(b.controller_fw, 0);
            prop_assert_eq!(b.controller_theta, 0.0);
        }
    }

    /// An *active* controller whose θ grid holds only the exact anchor
    /// (θ = 0) under recompute correction is bit-identical to the
    /// blocking baseline for every scenario: window retunes change when
    /// values are computed, never what is computed.
    #[test]
    fn active_exact_anchor_controller_equals_baseline(
        sc in synthetic_scenario(),
        params in exact_spec_params(),
    ) {
        let mode = adaptive_mode(&params, exact_anchor_controller());
        let ctl = run_sim(&sc, params.theta, &mode, TieBreak::Fifo);
        let base = run_sim(&sc, params.theta, &DriverMode::Baseline, TieBreak::Fifo);
        prop_assert_eq!(&ctl.fingerprints, &base.fingerprints);
        for s in &ctl.stats {
            prop_assert_eq!(s.iterations, sc.iters);
            // warmup = 2 ≤ iters, so the controller must have decided.
            prop_assert!(s.controller_retunes >= 1, "controller never evaluated");
            prop_assert_eq!(s.controller_theta, 0.0);
            prop_assert!(s.controller_fw >= 1 && s.controller_fw <= 4);
        }
    }

    /// Controller decisions are a pure function of committed virtual-time
    /// telemetry: the same scenario replays bit-for-bit — fingerprints,
    /// virtual end time, and the decision counters themselves.
    #[test]
    fn controller_runs_replay_bit_for_bit(
        sc in synthetic_scenario(),
        params in spec_params(),
    ) {
        let params = SpecParams { fw: params.fw.max(1), ..params };
        let ctl = ControllerConfig::new()
            .with_theta_grid(vec![0.0, 0.01, 0.05])
            .with_cadence(2, 1)
            .with_fw_max(4);
        let mode = adaptive_mode(&params, ctl);
        let a = run_sim(&sc, params.theta, &mode, TieBreak::Fifo);
        let b = run_sim(&sc, params.theta, &mode, TieBreak::Fifo);
        prop_assert_eq!(&a.fingerprints, &b.fingerprints);
        prop_assert_eq!(a.elapsed, b.elapsed);
        let decisions = |o: &speccheck::RunOutput| -> Vec<(u64, u64, f64)> {
            o.stats
                .iter()
                .map(|s| (s.controller_retunes, s.controller_fw, s.controller_theta))
                .collect()
        };
        prop_assert_eq!(decisions(&a), decisions(&b));
    }

    /// Sim and thread backends agree bit-for-bit under the controller
    /// with the exact anchor grid. The thread backend's wall-clock waits
    /// drive genuinely different decision sequences than the simulator's
    /// virtual-time waits — and the final state must not care, because
    /// every decision the exact-anchor controller can make is semantics-
    /// preserving.
    #[test]
    fn sim_and_thread_agree_under_exact_anchor_controller(
        sc in synthetic_scenario(),
        params in exact_spec_params(),
    ) {
        let mode = adaptive_mode(&params, exact_anchor_controller());
        let sim = run_sim(&sc, params.theta, &mode, TieBreak::Fifo);
        let thread = run_thread(&sc, params.theta, &mode);
        prop_assert_eq!(&sim.fingerprints, &thread.fingerprints);
    }

    /// Convergence: under a stationary delay and stationary compute (no
    /// jitter, no value jumps, no compute ramp) the controller's final
    /// window lands within one grid step of a near-optimal fixed window
    /// from an offline sweep — or the adaptive run itself matches the
    /// best fixed end time — and stays there: a run half again as long
    /// finishes on the same decision.
    #[test]
    fn controller_converges_near_offline_optimal_window(
        sc in synthetic_scenario(),
        bw in 1usize..4,
    ) {
        const FW_MAX: u32 = 4;
        let sc = SyntheticScenario {
            // Balanced partitions: the controller models *communication*
            // delay, so the property holds when waits come from the
            // network, not from compute skew between unequal partitions
            // (a throughput imbalance no window depth can mask).
            n: sc.n.div_ceil(sc.p) * sc.p,
            iters: sc.iters.max(12),
            ramp: 0.0,
            jitter_frac: 0.0,
            jump_prob: 0.0,
            ..sc
        };
        // θ generous so misses do not perturb the timing comparison.
        let theta = 0.5;
        let fixed = |fw: u32| SpecParams { fw, bw, theta, recompute: false };
        let sweep: Vec<f64> = (1..=FW_MAX)
            .map(|fw| run_sim(&sc, theta, &DriverMode::from_params(&fixed(fw)), TieBreak::Fifo).elapsed)
            .collect();
        let best = sweep.iter().cloned().fold(f64::INFINITY, f64::min);
        // The plateau: fixed windows within 5% of the best.
        let plateau: Vec<u32> = (1..=FW_MAX)
            .filter(|fw| sweep[(*fw - 1) as usize] <= best * 1.05)
            .collect();

        let ctl = ControllerConfig::new().with_cadence(4, 2).with_fw_max(FW_MAX);
        let mode = adaptive_mode(&fixed(1), ctl);
        let run = run_sim(&sc, theta, &mode, TieBreak::Fifo);
        let longer_sc = SyntheticScenario { iters: sc.iters + 6, ..sc.clone() };
        let longer = run_sim(&longer_sc, theta, &mode, TieBreak::Fifo);
        // The issue's acceptance criterion is "match or beat the best
        // fixed window": either the final decision sits within one grid
        // step of the plateau, or the adaptive run's own end time is
        // within 15% of the best fixed — the §4 model is a coarse
        // predictor, so on a nearly-flat sweep it may settle one or two
        // steps away, and the run also pays its warmup; what must never
        // happen is picking a window whose real cost is far off the best.
        let on_plateau = run.elapsed <= best * 1.15;
        for (k, s) in run.stats.iter().enumerate() {
            prop_assert!(s.controller_retunes >= 1);
            let fw = s.controller_fw as u32;
            prop_assert!(
                on_plateau || plateau.iter().any(|p| p.abs_diff(fw) <= 1),
                "rank {}: final fw {} more than one step from plateau {:?} \
                 and adaptive elapsed {} off the best fixed {} (sweep {:?})",
                k, fw, plateau, run.elapsed, best, sweep
            );
            prop_assert_eq!(
                longer.stats[k].controller_fw, s.controller_fw,
                "rank {} did not stabilize: fw moved between run lengths", k
            );
        }
    }
}

/// Adaptive deadlines must tighten a pessimistic static loss timeout: on
/// a lossy network whose configured timeout is ~50× the real gap scale,
/// the controller's gap-quantile deadlines promote genuinely lost
/// messages in milliseconds instead of a quarter second, finishing the
/// run strictly earlier while still completing every iteration — and the
/// whole lossy, controller-driven schedule replays bit-for-bit.
///
/// The deadline quantile is the *median* (with a generous ×4 headroom):
/// loss stalls themselves inflate the observed inter-arrival gaps — a
/// blocked front cascades cluster-wide, so under heavy loss timeout-sized
/// gaps can occupy more of the ring's tail than a high quantile's margin,
/// and the estimator would keep reproducing the very timeout it is meant
/// to replace. The median stays on the clean gap scale as long as stalls
/// are a minority of samples.
#[test]
fn adaptive_deadlines_beat_pessimistic_static_timeout_under_loss() {
    let sc = SyntheticScenario {
        p: 3,
        n: 12,
        iters: 40,
        mips: 50.0,
        ramp: 0.0,
        latency_us: 2_000,
        jitter_frac: 0.0,
        jump_prob: 0.0,
        delta_floor: 0.0,
        delta_keyframe: 1,
        seed: 11,
    };
    let theta = 0.3;
    let loss = speccheck::FaultScenario {
        loss_prob: 0.08,
        dup_prob: 0.0,
        seed: 5,
        timeout_ms: 250,
    };
    let base_cfg = SpecConfig::speculative(2)
        .with_correction(CorrectionMode::Incremental)
        .with_fault_tolerance(FaultTolerance::new(desim::SimDuration::from_millis(
            loss.timeout_ms,
        )));
    let adaptive_cfg = base_cfg.clone().with_adaptive(
        ControllerConfig::new()
            .with_cadence(4, 1)
            .with_fw_max(2)
            .with_deadline(0.5, 4.0),
    );
    let run = |cfg: &SpecConfig| {
        run_sim_with_faults(
            &sc,
            theta,
            &DriverMode::Speculative(cfg.clone()),
            loss.build(),
            TieBreak::Fifo,
        )
    };
    let static_run = run(&base_cfg);
    let adaptive = run(&adaptive_cfg);
    let again = run(&adaptive_cfg);
    assert_eq!(
        adaptive.fingerprints, again.fingerprints,
        "lossy controller run must replay bit-for-bit"
    );
    assert_eq!(adaptive.elapsed, again.elapsed);
    for (k, s) in static_run.stats.iter().enumerate() {
        assert_eq!(s.iterations, sc.iters, "static rank {k} wedged");
    }
    for (k, s) in adaptive.stats.iter().enumerate() {
        assert_eq!(s.iterations, sc.iters, "adaptive rank {k} wedged");
        assert!(s.controller_retunes >= 1, "rank {k} never retuned");
    }
    assert!(
        adaptive.elapsed < static_run.elapsed,
        "adaptive deadlines must beat the pessimistic static timeout: \
         adaptive {} vs static {}",
        adaptive.elapsed,
        static_run.elapsed
    );
}
