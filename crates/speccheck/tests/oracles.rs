//! Invariant-oracle properties: checks that must hold for every
//! generated run — exhaustive phase accounting, loss-commit bounds,
//! checkpoint/restore round-trips, performance-model monotonicity, and
//! momentum conservation of the symmetric N-body kernel.

use desim::TieBreak;
use mpk::Rank;
use nbody::{uniform_cloud, NBodyApp, NBodyConfig, SpeculationOrder};
use perfmodel::{fig5_series, fig6_series, CommModel, ModelParams};
use proptest::prelude::*;
use speccheck::oracles::{
    checkpoint_round_trip, loss_commit_accounting, momentum_drift, monotone_nondecreasing,
    phase_partition,
};
use speccheck::{
    loss_scenario, run_sim, run_sim_with_faults, spec_params, synthetic_scenario, DriverMode,
};
use speccore::SpeculativeApp;
use workloads::SyntheticApp;

/// Random but well-formed model parameters: capacities fastest-first.
fn model_params(
    n: f64,
    f_comp: f64,
    caps: Vec<f64>,
    base: f64,
    per_proc: f64,
    k: f64,
) -> ModelParams {
    let mut capacities = caps;
    capacities.sort_by(|a, b| b.partial_cmp(a).unwrap());
    ModelParams {
        n,
        f_comp,
        f_spec: f_comp / 500.0,
        f_check: f_comp / 250.0,
        capacities,
        comm: CommModel::Affine { base, per_proc },
        k,
    }
}

proptest! {
    /// Every nanosecond of every rank's run is attributed to exactly one
    /// phase: `phases.total() + downtime == total_time`, bit-for-bit, for
    /// any scenario and configuration.
    #[test]
    fn phases_partition_total_time(sc in synthetic_scenario(), params in spec_params()) {
        let out = run_sim(&sc, params.theta, &DriverMode::from_params(&params), TieBreak::Fifo);
        for s in &out.stats {
            let check = phase_partition(s);
            prop_assert!(check.is_ok(), "{}", check.unwrap_err());
        }
    }

    /// Speculate-through-loss accounting holds cluster-wide on loss-only
    /// stacks: commits never exceed messages lost, zero losses imply zero
    /// commits, and no rank commits more than its peer-input slots. (An
    /// earlier timeout-only driver failed the loss bound through a
    /// timeout cascade; the corpus witness that found it now replays
    /// green against the evidence/grace promotion protocol — see the
    /// oracle's docs.) Phase accounting stays exhaustive under loss.
    #[test]
    fn loss_commits_bounded_by_losses(
        sc in synthetic_scenario(),
        fault in loss_scenario(),
        fw in 1u32..4,
        theta in 0.0f64..0.4,
    ) {
        // Keep the network calm so a "lost" message is never merely late
        // (the accounting oracle's validity condition).
        let mut sc = sc;
        sc.jitter_frac = 0.0;
        sc.latency_us = sc.latency_us.min(2_000);
        let cfg = speccore::SpecConfig::speculative(fw).with_fault_tolerance(fault.tolerance());
        let out = run_sim_with_faults(
            &sc,
            theta,
            &DriverMode::Speculative(cfg),
            fault.build(),
            TieBreak::Fifo,
        );
        let check = loss_commit_accounting(&out.stats, sc.iters);
        prop_assert!(check.is_ok(), "{}", check.unwrap_err());
        for s in &out.stats {
            prop_assert_eq!(s.iterations, sc.iters);
            let phases = phase_partition(s);
            prop_assert!(phases.is_ok(), "{}", phases.unwrap_err());
        }
    }

    /// `checkpoint()` → one full iteration → `restore()` reproduces the
    /// synthetic app's state bit-for-bit.
    #[test]
    fn synthetic_checkpoint_round_trips(sc in synthetic_scenario(), theta in 0.0f64..0.5) {
        let ranges = sc.ranges();
        let peer = SyntheticApp::new(sc.n, &ranges, 1, sc.app_cfg(theta)).shared();
        let mut app = SyntheticApp::new(sc.n, &ranges, 0, sc.app_cfg(theta));
        let res = checkpoint_round_trip(
            &mut app,
            |a| a.fingerprint(),
            |a| {
                a.begin_iteration();
                a.absorb(Rank(1), &peer);
                a.finish_iteration();
            },
        );
        prop_assert!(res.is_ok(), "{}", res.unwrap_err());
    }

    /// Same round-trip for the N-body app (positions *and* velocities).
    #[test]
    fn nbody_checkpoint_round_trips(n in 8usize..40, seed in 0u64..1_000) {
        let particles = uniform_cloud(n, seed);
        let ranges = vec![0..n / 2, n / 2..n];
        let cfg = NBodyConfig::default();
        let peer =
            NBodyApp::new(&particles, ranges.clone(), 1, cfg, SpeculationOrder::Linear).shared();
        let mut app = NBodyApp::new(&particles, ranges, 0, cfg, SpeculationOrder::Linear);
        let res = checkpoint_round_trip(
            &mut app,
            |a| a.fingerprint(),
            |a| {
                a.begin_iteration();
                a.absorb(Rank(1), &peer);
                a.finish_iteration();
            },
        );
        prop_assert!(res.is_ok(), "{}", res.unwrap_err());
    }

    /// Eq. 9 is monotone nondecreasing in the recomputation fraction k:
    /// misspeculating more can only cost time. Checked on *random* model
    /// parameters, not just the paper's worked example.
    #[test]
    fn t_hat_is_monotone_in_k(
        n in 100.0f64..5_000.0,
        f_comp in 100.0f64..50_000.0,
        caps in proptest::collection::vec(1e5f64..1e8, 2..8),
        base in 0.0f64..0.1,
        per_proc in 0.0f64..0.02,
        k1 in 0.0f64..1.0,
        k2 in 0.0f64..1.0,
    ) {
        let m = model_params(n, f_comp, caps, base, per_proc, 0.0);
        let p = m.capacities.len();
        let (lo, hi) = if k1 <= k2 { (k1, k2) } else { (k2, k1) };
        prop_assert!(m.with_k(lo).t_hat(p) <= m.with_k(hi).t_hat(p) + 1e-12);
    }

    /// The speedup ceiling `Σ M_i / M_1` is monotone nondecreasing in p
    /// (adding a machine never shrinks total capacity), and both modelled
    /// speedups stay under it at every p.
    #[test]
    fn speedup_ceiling_is_monotone_and_respected(
        n in 100.0f64..5_000.0,
        f_comp in 1_000.0f64..50_000.0,
        caps in proptest::collection::vec(1e5f64..1e8, 2..8),
        base in 0.0f64..0.1,
        per_proc in 0.0f64..0.02,
        k in 0.0f64..0.5,
    ) {
        let m = model_params(n, f_comp, caps, base, per_proc, k);
        let p_max = m.capacities.len();
        let ceilings: Vec<f64> = (1..=p_max).map(|p| m.speedup_max(p)).collect();
        let mono = monotone_nondecreasing(ceilings.iter().copied(), 1e-12, "speedup_max");
        prop_assert!(mono.is_ok(), "{}", mono.unwrap_err());
        for p in 1..=p_max {
            prop_assert!(m.speedup_nospec(p) <= m.speedup_max(p) + 1e-9);
            prop_assert!(m.speedup_spec(p) <= m.speedup_max(p) + 1e-9);
        }
    }

    /// The published series are consistent with the model they plot:
    /// every Figure 5 row equals the model's speedups at that p, and
    /// every Figure 6 row equals the k-swept model at that k.
    #[test]
    fn figure_series_match_the_model(p_max in 2usize..16, k in 0.0f64..0.3) {
        let m = ModelParams::paper_example().with_k(k);
        for row in fig5_series(&m, p_max) {
            prop_assert_eq!(row.no_spec, m.speedup_nospec(row.p));
            prop_assert_eq!(row.spec, m.speedup_spec(row.p));
            prop_assert_eq!(row.max, m.speedup_max(row.p));
        }
        let ks = [0.0, k, 2.0 * k];
        for row in fig6_series(&m, 8, &ks) {
            let mk = m.with_k(row.k);
            prop_assert_eq!(row.spec, mk.speedup_spec(8));
            prop_assert_eq!(row.no_spec, mk.speedup_nospec(8));
        }
    }

    /// The symmetric SoA force kernel conserves total momentum to
    /// rounding: internal gravity cancels in exactly evaluated pairs.
    #[test]
    fn symmetric_kernel_conserves_momentum(
        n in 8usize..64,
        seed in 0u64..10_000,
        steps in 1u64..30,
    ) {
        let drift = momentum_drift(n, seed, steps, 1e-3);
        prop_assert!(drift < 1e-9, "momentum drift {drift} over {steps} steps of n={n}");
    }
}

/// Non-vacuity guard for the round-trip oracles: the perturbation used
/// above really does change the fingerprint, so the round-trip tests
/// cannot pass by perturbing nothing.
#[test]
fn one_iteration_changes_the_synthetic_fingerprint() {
    let ranges = vec![0..8, 8..16];
    let cfg = workloads::SyntheticConfig::default();
    let peer = SyntheticApp::new(16, &ranges, 1, cfg).shared();
    let mut app = SyntheticApp::new(16, &ranges, 0, cfg);
    let before = app.fingerprint();
    app.begin_iteration();
    app.absorb(Rank(1), &peer);
    app.finish_iteration();
    assert_ne!(before, app.fingerprint(), "iteration must move the state");
}
