//! Targeted unit tests closing the gaps reported by
//! `ci/coverage_audit.sh` (public perfmodel/workloads APIs that no other
//! test referenced). Keep this file in sync with the audit: a new gap in
//! its output should gain a test here.

use proptest::prelude::*;
use workloads::{Graph, Heat2dApp, Heat2dConfig};

proptest! {
    /// `Heat2dApp::shape` reports exactly the strip this rank owns: its
    /// row range's length by the full grid width, and `cells()` has
    /// matching size — over arbitrary grid splits.
    #[test]
    fn heat2d_shape_matches_the_partition(
        rows_per in 1usize..6,
        p in 2usize..5,
        cols in 3usize..12,
    ) {
        let n_rows = rows_per * p;
        let ranges: Vec<_> = (0..p).map(|i| i * rows_per..(i + 1) * rows_per).collect();
        for me in 0..p {
            let app = Heat2dApp::new(n_rows, cols, &ranges, me, Heat2dConfig::default());
            let (r, c) = app.shape();
            prop_assert_eq!(r, rows_per);
            prop_assert_eq!(c, cols);
            prop_assert_eq!(app.cells().len(), r * c);
        }
    }

    /// `Graph::out_degree` agrees with the adjacency it summarises, and
    /// `Graph::random(n, d, seed)` gives every node exactly `d`
    /// out-edges with in-range targets.
    #[test]
    fn graph_out_degree_is_consistent(
        n in 2usize..40,
        d in 1usize..6,
        seed in 0u64..1_000,
    ) {
        let g = Graph::random(n, d, seed);
        prop_assert_eq!(g.n, n);
        for j in 0..n {
            prop_assert_eq!(g.out_degree(j), g.edges[j].len());
            prop_assert_eq!(g.out_degree(j), d);
            for &t in &g.edges[j] {
                prop_assert!(t < n, "edge {j}->{t} out of range");
            }
        }
    }
}

/// Gap-closers for the desim crate (the audit's third crate since the
/// stackless kernel landed): typed receives on the threaded handle, raw
/// event-queue draining, the stackless `ProcCtx` surface, and saturating
/// duration arithmetic.
mod desim_gaps {
    use desim::{
        EventKind, EventQueue, MailboxId, ProcCtx, Process, ProcessId, Resume, SimDuration,
        SimTime, Simulation, Yield,
    };

    #[test]
    fn sim_duration_saturating_arithmetic_clamps_at_the_edges() {
        let max = SimDuration::from_nanos(u64::MAX);
        let one = SimDuration::from_nanos(1);
        assert_eq!(max.saturating_add(one), max);
        assert_eq!(one.saturating_sub(max), SimDuration::from_nanos(0));
        assert_eq!(
            SimDuration::from_nanos(5).saturating_add(one),
            SimDuration::from_nanos(6)
        );
        assert_eq!(
            SimDuration::from_nanos(5).saturating_sub(one),
            SimDuration::from_nanos(4)
        );
    }

    #[test]
    fn event_queue_pop_event_drains_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(30), EventKind::Wake(ProcessId(3)));
        q.push(SimTime::from_nanos(10), EventKind::Wake(ProcessId(1)));
        q.push(SimTime::from_nanos(20), EventKind::Wake(ProcessId(2)));
        let mut times = Vec::new();
        while let Some((key, kind)) = q.pop_event() {
            assert!(matches!(kind, EventKind::Wake(_)));
            times.push(key.time);
        }
        assert_eq!(
            times,
            vec![
                SimTime::from_nanos(10),
                SimTime::from_nanos(20),
                SimTime::from_nanos(30)
            ]
        );
        assert!(q.pop_event().is_none());
    }

    /// The threaded handle's typed receive family: `recv_as` (blocking),
    /// `try_recv_as` (polling, including the type-preserving miss), and
    /// `recv_deadline_as` (hit and expiry), plus `pid()` on both the
    /// handle and the spawn result.
    #[test]
    fn threaded_typed_receives_round_trip() {
        let mut sim = Simulation::new();
        let mbox = sim.create_mailbox();
        let res = sim.spawn("typed", move |h| {
            assert_eq!(h.pid(), ProcessId(0));
            let early: Option<u64> = h.try_recv_as(mbox);
            assert!(early.is_none(), "nothing delivered yet");
            let first: u64 = h.recv_as(mbox);
            let second: u64 = h
                .recv_deadline_as(mbox, h.now() + SimDuration::from_millis(10))
                .expect("second message arrives before deadline");
            let expired: Option<u64> =
                h.recv_deadline_as(mbox, h.now() + SimDuration::from_micros(1));
            assert!(expired.is_none(), "no third message: deadline must expire");
            first + second
        });
        sim.spawn("feeder", move |h| {
            h.send(mbox, SimDuration::from_millis(1), 40u64);
            h.send(mbox, SimDuration::from_millis(2), 2u64);
        });
        sim.run().unwrap();
        assert_eq!(res.pid(), ProcessId(0));
        assert_eq!(res.take(), Some(42));
    }

    /// A raw `Process` state machine exercising the remaining `ProcCtx`
    /// surface: `pid`, `tracing_enabled`, and `send_payload` (re-sending
    /// an already-boxed message without downcasting it).
    struct Forwarder {
        rx: MailboxId,
        tx: MailboxId,
        forwarded: u64,
        quota: u64,
    }

    impl Process for Forwarder {
        fn resume(&mut self, ctx: &mut ProcCtx<'_>) -> Yield {
            assert_eq!(ctx.pid(), ProcessId(0));
            assert!(!ctx.tracing_enabled(), "tracing was never enabled");
            match ctx.take_resume() {
                Resume::Message(Some(payload)) => {
                    ctx.send_payload(self.tx, SimDuration::from_millis(1), payload);
                    self.forwarded += 1;
                }
                Resume::Start | Resume::Resumed => {}
                Resume::Message(None) => unreachable!("no deadline armed"),
            }
            if self.forwarded == self.quota {
                return Yield::Done;
            }
            Yield::Recv { mbox: self.rx }
        }
    }

    #[test]
    fn raw_process_forwards_boxed_payloads() {
        let mut sim = Simulation::new();
        let inbox = sim.create_mailbox();
        let outbox = sim.create_mailbox();
        sim.spawn_process(
            "forwarder",
            Forwarder {
                rx: inbox,
                tx: outbox,
                forwarded: 0,
                quota: 3,
            },
        );
        let out = sim.spawn_async("sink", move |h| async move {
            assert_eq!(h.pid(), desim::ProcessId(1));
            let mut sum = 0u64;
            for i in 0u64..3 {
                h.send(inbox, SimDuration::from_millis(1), i + 10).await;
                sum += h.recv_as::<u64>(outbox).await;
            }
            sum
        });
        sim.run().unwrap();
        assert_eq!(out.take(), Some(10 + 11 + 12));
    }
}

/// `perfmodel::predicted_iteration_time` agrees with the §4 model it
/// wraps: the checked entry point returns exactly `t_hat(p)` for a
/// well-formed parameter set and clamps out-of-range processor counts
/// into the capacity table instead of panicking.
#[test]
fn predicted_iteration_time_matches_t_hat() {
    let params = perfmodel::ModelParams {
        n: 200.0,
        f_comp: 1_500.0,
        f_spec: 15.0,
        f_check: 30.0,
        capacities: vec![2e6; 4],
        comm: perfmodel::CommModel::Affine {
            base: 0.02,
            per_proc: 0.001,
        },
        k: 0.1,
    };
    let t = perfmodel::predicted_iteration_time(&params, 3).expect("well-formed params");
    assert_eq!(t, params.t_hat(3));
    let clamped = perfmodel::predicted_iteration_time(&params, 99).expect("p clamps to table");
    assert_eq!(clamped, params.t_hat(4));
}
