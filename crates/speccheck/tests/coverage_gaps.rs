//! Targeted unit tests closing the gaps reported by
//! `ci/coverage_audit.sh` (public perfmodel/workloads APIs that no other
//! test referenced). Keep this file in sync with the audit: a new gap in
//! its output should gain a test here.

use proptest::prelude::*;
use workloads::{Graph, Heat2dApp, Heat2dConfig};

proptest! {
    /// `Heat2dApp::shape` reports exactly the strip this rank owns: its
    /// row range's length by the full grid width, and `cells()` has
    /// matching size — over arbitrary grid splits.
    #[test]
    fn heat2d_shape_matches_the_partition(
        rows_per in 1usize..6,
        p in 2usize..5,
        cols in 3usize..12,
    ) {
        let n_rows = rows_per * p;
        let ranges: Vec<_> = (0..p).map(|i| i * rows_per..(i + 1) * rows_per).collect();
        for me in 0..p {
            let app = Heat2dApp::new(n_rows, cols, &ranges, me, Heat2dConfig::default());
            let (r, c) = app.shape();
            prop_assert_eq!(r, rows_per);
            prop_assert_eq!(c, cols);
            prop_assert_eq!(app.cells().len(), r * c);
        }
    }

    /// `Graph::out_degree` agrees with the adjacency it summarises, and
    /// `Graph::random(n, d, seed)` gives every node exactly `d`
    /// out-edges with in-range targets.
    #[test]
    fn graph_out_degree_is_consistent(
        n in 2usize..40,
        d in 1usize..6,
        seed in 0u64..1_000,
    ) {
        let g = Graph::random(n, d, seed);
        prop_assert_eq!(g.n, n);
        for j in 0..n {
            prop_assert_eq!(g.out_degree(j), g.edges[j].len());
            prop_assert_eq!(g.out_degree(j), d);
            for &t in &g.edges[j] {
                prop_assert!(t < n, "edge {j}->{t} out of range");
            }
        }
    }
}
