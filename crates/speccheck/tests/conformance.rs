//! Differential conformance properties: the headline equivalences of the
//! speculative scheme, checked across generated scenario space.
//!
//! Semantics notes (what is *exactly* equal vs merely bounded):
//!
//! * θ = 0 + recompute (or FW = 0) makes speculation a pure latency
//!   optimization — every speculated input is re-derived from actuals, so
//!   final state must be **bit-identical** to the blocking baseline, to
//!   the other transport backend, and across event tie-breaks.
//! * θ > 0 with incremental correction accepts bounded per-value error
//!   (the paper's eq. 11): runs are still deterministic per seed, but not
//!   comparable bit-for-bit across transports or tie-breaks — those
//!   configurations are only asserted reproducible, never equal.
//! * Fault *machinery* (timeouts, retransmits) on a fault-free network
//!   must be inert: identical fingerprints and zero loss-path counters.
//!
//! Failures shrink (see `speccheck::scenario`) and persist their RNG
//! state to `crates/speccheck/proptest-regressions/`, which is checked in
//! and replayed before fresh cases.

use desim::{SimDuration, TieBreak};
use proptest::prelude::*;
use speccheck::{
    exact_spec_params, run_sim, run_sim_polled, run_sim_values, run_sim_with_faults, run_socket,
    run_thread, spec_params, synthetic_scenario, DriverMode, SpecParams, SyntheticScenario,
};
use speccore::{DeltaExchange, FaultTolerance, SpecConfig};

/// The grid point's driver mode with a delta-exchange policy attached.
fn delta_mode(params: &SpecParams, floor: f64, keyframe: u64) -> DriverMode {
    DriverMode::Speculative(
        params
            .build()
            .with_delta_exchange(DeltaExchange::new(floor, keyframe)),
    )
}

/// Delta frames only apply in order; a reordered frame is dropped and
/// healed later, which is correct but changes *which* values feed θ > 0
/// runs. Equality-with-full-broadcast properties therefore pin the
/// network to FIFO-preserving constant latency (the jitter model can
/// reorder same-link messages).
fn fifo_net(sc: &SyntheticScenario) -> SyntheticScenario {
    SyntheticScenario {
        jitter_frac: 0.0,
        ..sc.clone()
    }
}

proptest! {
    /// Sim and thread transports agree bit-for-bit on final state under
    /// exact semantics (θ = 0 + recompute).
    #[test]
    fn sim_and_thread_agree_under_exact_semantics(
        sc in synthetic_scenario(),
        params in exact_spec_params(),
    ) {
        let mode = DriverMode::from_params(&params);
        let sim = run_sim(&sc, params.theta, &mode, TieBreak::Fifo);
        let thread = run_thread(&sc, params.theta, &mode);
        prop_assert_eq!(sim.fingerprints, thread.fingerprints);
    }

    /// θ = 0 + recompute is bit-identical to the blocking baseline: the
    /// speculative driver must change *when* values are computed, never
    /// *what* is computed (PAPER.md Fig. 1 vs Fig. 3).
    #[test]
    fn theta_zero_recompute_equals_baseline(
        sc in synthetic_scenario(),
        params in exact_spec_params(),
    ) {
        let spec = run_sim(&sc, params.theta, &DriverMode::from_params(&params), TieBreak::Fifo);
        let base = run_sim(&sc, params.theta, &DriverMode::Baseline, TieBreak::Fifo);
        prop_assert_eq!(&spec.fingerprints, &base.fingerprints);
        for s in &spec.stats {
            prop_assert_eq!(s.iterations, sc.iters);
        }
    }

    /// FW = 0 run through the speculative driver is the baseline: with an
    /// empty forward window nothing is ever speculated, so the driver
    /// degenerates to the blocking loop bit-for-bit.
    #[test]
    fn forward_window_zero_is_the_baseline(sc in synthetic_scenario(), theta in 0.0f64..0.5) {
        let fw0 = DriverMode::Speculative(SpecConfig::baseline());
        let spec = run_sim(&sc, theta, &fw0, TieBreak::Fifo);
        let base = run_sim(&sc, theta, &DriverMode::Baseline, TieBreak::Fifo);
        prop_assert_eq!(&spec.fingerprints, &base.fingerprints);
        for s in &spec.stats {
            prop_assert_eq!(s.speculated_partitions, 0);
        }
    }

    /// Fault-tolerance machinery on a fault-free network is inert for
    /// **every** configuration on the grid — θ and the correction mode
    /// included: the loss paths never fire and the final state is
    /// bit-identical to the plain config. (The generous timeout keeps
    /// "merely late" unmistakable for "lost" — scenario latencies top out
    /// near 10 ms.)
    ///
    /// This full-grid equality is exactly what the old polling receive
    /// could not deliver: bounded waits observed arrivals on poll quanta,
    /// shifting virtual timing and changing *which* speculations a
    /// nonzero θ accepted — the shrunk counterexample (p=5, n=8, fw=1,
    /// θ≈0.008, 33 µs jittered latency) stays in the regression corpus
    /// and now replays green against the event-driven wait, which wakes
    /// at the exact arrival or deadline instant and leaves virtual
    /// timing untouched (the end-time equality below pins that too).
    #[test]
    fn fault_tolerance_is_inert_without_faults(
        sc in synthetic_scenario(),
        params in spec_params(),
        timeout_ms in 200u64..500,
    ) {
        let plain = run_sim(&sc, params.theta, &DriverMode::from_params(&params), TieBreak::Fifo);
        let ft_cfg = params
            .build()
            .with_fault_tolerance(FaultTolerance::new(SimDuration::from_millis(timeout_ms)));
        let ft = run_sim_with_faults(
            &sc,
            params.theta,
            &DriverMode::Speculative(ft_cfg),
            mpk::FaultSpec::none(),
            TieBreak::Fifo,
        );
        prop_assert_eq!(&plain.fingerprints, &ft.fingerprints);
        prop_assert_eq!(plain.elapsed, ft.elapsed);
        for s in &ft.stats {
            prop_assert_eq!(s.iterations, sc.iters);
            prop_assert_eq!(s.messages_lost, 0);
            prop_assert_eq!(s.speculate_through_loss_commits, 0);
            prop_assert_eq!(s.retransmit_requests, 0);
        }
    }

    /// The event-driven bounded wait is observationally equivalent to the
    /// reference polling implementation it replaced, wherever equivalence
    /// is well-defined: under exact semantics (timing shifts cannot change
    /// values) with fault machinery armed but no faults injected, the
    /// final state matches bit-for-bit.
    #[test]
    fn event_driven_wait_matches_reference_polling(
        sc in synthetic_scenario(),
        params in exact_spec_params(),
        timeout_ms in 200u64..500,
    ) {
        let ft_cfg = params
            .build()
            .with_fault_tolerance(FaultTolerance::new(SimDuration::from_millis(timeout_ms)));
        let mode = DriverMode::Speculative(ft_cfg);
        let event = run_sim_with_faults(
            &sc, params.theta, &mode, mpk::FaultSpec::none(), TieBreak::Fifo,
        );
        let polled = run_sim_polled(
            &sc, params.theta, &mode, mpk::FaultSpec::none(), TieBreak::Fifo,
        );
        prop_assert_eq!(&event.fingerprints, &polled.fingerprints);
        for s in &event.stats {
            prop_assert_eq!(s.speculate_through_loss_commits, 0);
        }
    }

    /// Arming fault tolerance must not make exact results tie-break
    /// sensitive: the deadline timer events it adds to the kernel's queue
    /// consume sequence numbers, and FIFO, LIFO, and seeded orderings of
    /// simultaneous events must still all land on the same final state.
    #[test]
    fn ft_exact_results_are_tiebreak_insensitive(
        sc in synthetic_scenario(),
        params in exact_spec_params(),
        timeout_ms in 200u64..500,
        salt in 0u64..1_000_000,
    ) {
        let ft_cfg = params
            .build()
            .with_fault_tolerance(FaultTolerance::new(SimDuration::from_millis(timeout_ms)));
        let mode = DriverMode::Speculative(ft_cfg);
        let fifo = run_sim(&sc, params.theta, &mode, TieBreak::Fifo);
        let lifo = run_sim(&sc, params.theta, &mode, TieBreak::Lifo);
        let seeded = run_sim(&sc, params.theta, &mode, TieBreak::Seeded(salt));
        prop_assert_eq!(&fifo.fingerprints, &lifo.fingerprints);
        prop_assert_eq!(&fifo.fingerprints, &seeded.fingerprints);
    }

    /// Seeded same-virtual-time tie-breaking is deterministic: the same
    /// salt reproduces the whole run bit-for-bit — fingerprints, virtual
    /// end time, and speculation counters — for *any* configuration.
    #[test]
    fn same_salt_reproduces_the_run(
        sc in synthetic_scenario(),
        params in spec_params(),
        salt in 0u64..1_000_000,
    ) {
        let mode = DriverMode::from_params(&params);
        let a = run_sim(&sc, params.theta, &mode, TieBreak::Seeded(salt));
        let b = run_sim(&sc, params.theta, &mode, TieBreak::Seeded(salt));
        prop_assert_eq!(&a.fingerprints, &b.fingerprints);
        prop_assert_eq!(a.elapsed, b.elapsed);
        let counters = |o: &speccheck::RunOutput| -> Vec<(u64, u64, u64)> {
            o.stats
                .iter()
                .map(|s| (s.speculated_partitions, s.rollbacks, s.corrections))
                .collect()
        };
        prop_assert_eq!(counters(&a), counters(&b));
    }

    /// Lossless (floor = 0) delta exchange is bit-identical to full
    /// broadcast across the **whole** θ/FW grid: every delta frame
    /// reconstructs the sender's exact snapshot, and keyframes merely
    /// re-seed shadows. Timing is also untouched — on a size-independent
    /// latency model the virtual end times match exactly.
    #[test]
    fn lossless_delta_equals_full_broadcast_across_grid(
        sc in synthetic_scenario(),
        params in spec_params(),
    ) {
        let sc = fifo_net(&sc);
        let mode = DriverMode::from_params(&params);
        let full = run_sim(&sc, params.theta, &mode, TieBreak::Fifo);
        let delta = run_sim(
            &sc,
            params.theta,
            &delta_mode(&params, 0.0, sc.delta_keyframe),
            TieBreak::Fifo,
        );
        prop_assert_eq!(&full.fingerprints, &delta.fingerprints);
        prop_assert_eq!(full.elapsed, delta.elapsed);
        for s in &delta.stats {
            prop_assert_eq!(s.delta_frames_dropped, 0);
            prop_assert_eq!(s.iterations, sc.iters);
        }
    }

    /// A positive quantization floor offsets every exchanged value by at
    /// most `floor`, and the workload's dynamics amplify a received
    /// offset by at most the jump factor per iteration — so the final
    /// drift against the full-broadcast run stays inside the closed-form
    /// envelope `α·floor·Σ(1+jump)^k`. θ = 0 + recompute pins every
    /// other error source to zero, isolating quantization.
    #[test]
    fn quantized_delta_drift_is_bounded(
        sc in synthetic_scenario(),
        params in exact_spec_params(),
    ) {
        let sc = fifo_net(&sc);
        let floor = if sc.delta_floor > 0.0 { sc.delta_floor } else { 1e-4 };
        let mode = DriverMode::from_params(&params);
        let full = run_sim_values(&sc, 0.0, &mode, TieBreak::Fifo);
        let lossy = run_sim_values(
            &sc,
            0.0,
            &delta_mode(&params, floor, sc.delta_keyframe),
            TieBreak::Fifo,
        );
        // app_cfg: alpha = 0.1, multiplicative jumps of ±0.5.
        let (alpha, jump) = (0.1, 0.5);
        let envelope: f64 = (0..sc.iters)
            .map(|k| (1.0f64 + jump).powi(k as i32))
            .sum::<f64>()
            * alpha
            * floor;
        let bound = envelope * 4.0 + 1e-12;
        for (rank, (f, l)) in full.iter().zip(&lossy).enumerate() {
            for (i, (a, b)) in f.iter().zip(l).enumerate() {
                prop_assert!(
                    (a - b).abs() <= bound,
                    "rank {} var {}: |{} - {}| > {}", rank, i, a, b, bound
                );
            }
        }
    }

    /// Under exact semantics the *result* cannot hinge on how
    /// same-virtual-time ties are broken: FIFO, LIFO, and seeded
    /// permutations of simultaneous events all land on the same final
    /// state (scheduling affects only timing).
    #[test]
    fn exact_results_are_tiebreak_insensitive(
        sc in synthetic_scenario(),
        params in exact_spec_params(),
        salt in 0u64..1_000_000,
    ) {
        let mode = DriverMode::from_params(&params);
        let fifo = run_sim(&sc, params.theta, &mode, TieBreak::Fifo);
        let lifo = run_sim(&sc, params.theta, &mode, TieBreak::Lifo);
        let seeded = run_sim(&sc, params.theta, &mode, TieBreak::Seeded(salt));
        prop_assert_eq!(&fifo.fingerprints, &lifo.fingerprints);
        prop_assert_eq!(&fifo.fingerprints, &seeded.fingerprints);
    }
}

/// The thread backend's bounded wait never spins: a timeout that runs to
/// expiry on an empty mailbox costs exactly one condvar block, observed
/// through the transport's wakeup counter. (The sim backend's equivalent
/// guarantee — exactly one timer event per expired wait — is pinned by
/// `desim`'s `SimReport::timers_fired` unit tests.)
#[test]
fn thread_backend_timed_wait_never_spins() {
    use desim::SimDuration;
    use mpk::{run_thread_cluster, ThreadClusterOptions, Transport};
    let waits = run_thread_cluster::<u8, _, _>(1, ThreadClusterOptions::default(), |t| {
        assert!(t.recv_timeout(SimDuration::from_millis(25)).is_none());
        t.timed_waits()
    });
    assert_eq!(waits[0], 1, "one expired wait must cost exactly one block");
}

proptest! {
    // Socket runs mesh real TCP connections per case, so fewer cases
    // than the in-process properties; the regression file still replays
    // any counterexample first.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Three-way transport agreement: the virtual-time simulator, the
    /// in-process thread backend, and the real TCP socket backend
    /// produce bit-identical state fingerprints under exact semantics.
    /// This is the proof that encoding, framing, kernel delivery, and
    /// decoding preserve the algorithm end to end.
    #[test]
    fn sim_thread_and_socket_agree_under_exact_semantics(
        sc in synthetic_scenario(),
        params in exact_spec_params(),
    ) {
        let mode = DriverMode::from_params(&params);
        let sim = run_sim(&sc, params.theta, &mode, TieBreak::Fifo);
        let thread = run_thread(&sc, params.theta, &mode);
        let socket = run_socket(&sc, params.theta, &mode);
        prop_assert_eq!(&sim.fingerprints, &thread.fingerprints);
        prop_assert_eq!(&sim.fingerprints, &socket.fingerprints);
    }

    /// Lossless delta exchange agrees with full broadcast on **all three
    /// backends** under exact semantics: delta frames survive real
    /// encode/frame/decode over TCP and in-process mailboxes alike, and
    /// land on the PR 6 full-broadcast fingerprints bit for bit.
    #[test]
    fn lossless_delta_agrees_across_all_three_backends(
        sc in synthetic_scenario(),
        params in exact_spec_params(),
    ) {
        let sc = fifo_net(&sc);
        let mode = delta_mode(&params, 0.0, sc.delta_keyframe);
        let full = run_sim(&sc, params.theta, &DriverMode::from_params(&params), TieBreak::Fifo);
        let sim = run_sim(&sc, params.theta, &mode, TieBreak::Fifo);
        let thread = run_thread(&sc, params.theta, &mode);
        let socket = run_socket(&sc, params.theta, &mode);
        prop_assert_eq!(&full.fingerprints, &sim.fingerprints);
        prop_assert_eq!(&sim.fingerprints, &thread.fingerprints);
        prop_assert_eq!(&sim.fingerprints, &socket.fingerprints);
    }
}

/// The socket backend inherits the zero-spin bounded wait from the shared
/// mailbox: one expired timeout on a silent wire is exactly one condvar
/// block.
#[test]
fn socket_backend_timed_wait_never_spins() {
    use desim::SimDuration;
    use mpk::{run_socket_cluster, SocketClusterOptions, Transport};
    let waits = run_socket_cluster::<u8, _, _>(1, SocketClusterOptions::default(), |t| {
        assert!(t.recv_timeout(SimDuration::from_millis(25)).is_none());
        t.timed_waits()
    });
    assert_eq!(waits[0], 1, "one expired wait must cost exactly one block");
}
