//! Differential conformance properties: the headline equivalences of the
//! speculative scheme, checked across generated scenario space.
//!
//! Semantics notes (what is *exactly* equal vs merely bounded):
//!
//! * θ = 0 + recompute (or FW = 0) makes speculation a pure latency
//!   optimization — every speculated input is re-derived from actuals, so
//!   final state must be **bit-identical** to the blocking baseline, to
//!   the other transport backend, and across event tie-breaks.
//! * θ > 0 with incremental correction accepts bounded per-value error
//!   (the paper's eq. 11): runs are still deterministic per seed, but not
//!   comparable bit-for-bit across transports or tie-breaks — those
//!   configurations are only asserted reproducible, never equal.
//! * Fault *machinery* (timeouts, retransmits) on a fault-free network
//!   must be inert: identical fingerprints and zero loss-path counters.
//!
//! Failures shrink (see `speccheck::scenario`) and persist their RNG
//! state to `crates/speccheck/proptest-regressions/`, which is checked in
//! and replayed before fresh cases.

use desim::{SimDuration, SimTime, TieBreak};
use netsim::{CrashPlan, MachineCrash};
use proptest::prelude::*;
use speccheck::{
    exact_spec_params, run_sim, run_sim_polled, run_sim_values, run_sim_with_faults, run_socket,
    run_socket_with_faults, run_thread, run_thread_with_faults, spec_params, synthetic_scenario,
    DriverMode, SpecParams, SyntheticScenario,
};
use speccore::{DeltaExchange, FaultTolerance, SpecConfig, SupervisionConfig};

/// The grid point's driver mode with a delta-exchange policy attached.
fn delta_mode(params: &SpecParams, floor: f64, keyframe: u64) -> DriverMode {
    DriverMode::Speculative(
        params
            .build()
            .with_delta_exchange(DeltaExchange::new(floor, keyframe)),
    )
}

/// Delta frames only apply in order; a reordered frame is dropped and
/// healed later, which is correct but changes *which* values feed θ > 0
/// runs. Equality-with-full-broadcast properties therefore pin the
/// network to FIFO-preserving constant latency (the jitter model can
/// reorder same-link messages).
fn fifo_net(sc: &SyntheticScenario) -> SyntheticScenario {
    SyntheticScenario {
        jitter_frac: 0.0,
        ..sc.clone()
    }
}

/// The driver-side half of a crash schedule: fault tolerance with the
/// scripted outage attached, plus the supervision lifecycle that
/// quarantines the silent rank and readmits it on rejoin.
fn crash_mode(
    params: &SpecParams,
    timeout: SimDuration,
    sup: SupervisionConfig,
    crash: MachineCrash,
) -> DriverMode {
    DriverMode::Speculative(
        params
            .build()
            .with_fault_tolerance(FaultTolerance::new(timeout).with_crashes(vec![crash]))
            .with_supervision(sup),
    )
}

/// The transport-side half: sends addressed to the crashed rank during
/// its outage are dropped — and counted — at the sender, like datagrams
/// to a rebooting host. Keeping both halves on the same schedule is what
/// makes the "promoted commits ≤ messages lost" oracle meaningful.
fn crash_faults(crash: MachineCrash) -> mpk::FaultSpec<speccore::IterMsg<Vec<f64>>> {
    mpk::FaultSpec::none().with_crashes(CrashPlan::new(vec![crash]))
}

proptest! {
    /// Sim and thread transports agree bit-for-bit on final state under
    /// exact semantics (θ = 0 + recompute).
    #[test]
    fn sim_and_thread_agree_under_exact_semantics(
        sc in synthetic_scenario(),
        params in exact_spec_params(),
    ) {
        let mode = DriverMode::from_params(&params);
        let sim = run_sim(&sc, params.theta, &mode, TieBreak::Fifo);
        let thread = run_thread(&sc, params.theta, &mode);
        prop_assert_eq!(sim.fingerprints, thread.fingerprints);
    }

    /// θ = 0 + recompute is bit-identical to the blocking baseline: the
    /// speculative driver must change *when* values are computed, never
    /// *what* is computed (PAPER.md Fig. 1 vs Fig. 3).
    #[test]
    fn theta_zero_recompute_equals_baseline(
        sc in synthetic_scenario(),
        params in exact_spec_params(),
    ) {
        let spec = run_sim(&sc, params.theta, &DriverMode::from_params(&params), TieBreak::Fifo);
        let base = run_sim(&sc, params.theta, &DriverMode::Baseline, TieBreak::Fifo);
        prop_assert_eq!(&spec.fingerprints, &base.fingerprints);
        for s in &spec.stats {
            prop_assert_eq!(s.iterations, sc.iters);
        }
    }

    /// FW = 0 run through the speculative driver is the baseline: with an
    /// empty forward window nothing is ever speculated, so the driver
    /// degenerates to the blocking loop bit-for-bit.
    #[test]
    fn forward_window_zero_is_the_baseline(sc in synthetic_scenario(), theta in 0.0f64..0.5) {
        let fw0 = DriverMode::Speculative(SpecConfig::baseline());
        let spec = run_sim(&sc, theta, &fw0, TieBreak::Fifo);
        let base = run_sim(&sc, theta, &DriverMode::Baseline, TieBreak::Fifo);
        prop_assert_eq!(&spec.fingerprints, &base.fingerprints);
        for s in &spec.stats {
            prop_assert_eq!(s.speculated_partitions, 0);
        }
    }

    /// Fault-tolerance machinery on a fault-free network is inert for
    /// **every** configuration on the grid — θ and the correction mode
    /// included: the loss paths never fire and the final state is
    /// bit-identical to the plain config. (The generous timeout keeps
    /// "merely late" unmistakable for "lost" — scenario latencies top out
    /// near 10 ms.)
    ///
    /// This full-grid equality is exactly what the old polling receive
    /// could not deliver: bounded waits observed arrivals on poll quanta,
    /// shifting virtual timing and changing *which* speculations a
    /// nonzero θ accepted — the shrunk counterexample (p=5, n=8, fw=1,
    /// θ≈0.008, 33 µs jittered latency) stays in the regression corpus
    /// and now replays green against the event-driven wait, which wakes
    /// at the exact arrival or deadline instant and leaves virtual
    /// timing untouched (the end-time equality below pins that too).
    #[test]
    fn fault_tolerance_is_inert_without_faults(
        sc in synthetic_scenario(),
        params in spec_params(),
        timeout_ms in 200u64..500,
    ) {
        let plain = run_sim(&sc, params.theta, &DriverMode::from_params(&params), TieBreak::Fifo);
        let ft_cfg = params
            .build()
            .with_fault_tolerance(FaultTolerance::new(SimDuration::from_millis(timeout_ms)));
        let ft = run_sim_with_faults(
            &sc,
            params.theta,
            &DriverMode::Speculative(ft_cfg),
            mpk::FaultSpec::none(),
            TieBreak::Fifo,
        );
        prop_assert_eq!(&plain.fingerprints, &ft.fingerprints);
        prop_assert_eq!(plain.elapsed, ft.elapsed);
        for s in &ft.stats {
            prop_assert_eq!(s.iterations, sc.iters);
            prop_assert_eq!(s.messages_lost, 0);
            prop_assert_eq!(s.speculate_through_loss_commits, 0);
            prop_assert_eq!(s.retransmit_requests, 0);
        }
    }

    /// Supervision armed on a fault-free network is inert for **every**
    /// configuration on the grid: no peer ever goes stale, so the
    /// lifecycle never leaves `Healthy`, no quarantine bypass fires, and
    /// the run is bit-identical — values and virtual timing — to the
    /// same config without supervision. Together with `supervision:
    /// None` being the constructor default, this pins the PR 7 behavior
    /// exactly: a supervision-off config cannot be affected by the new
    /// machinery at all.
    #[test]
    fn supervision_is_inert_without_faults(
        sc in synthetic_scenario(),
        params in spec_params(),
        timeout_ms in 200u64..500,
    ) {
        let ft = FaultTolerance::new(SimDuration::from_millis(timeout_ms));
        let plain_cfg = params.build().with_fault_tolerance(ft.clone());
        let sup_cfg = plain_cfg.clone().with_supervision(SupervisionConfig::default());
        let plain = run_sim_with_faults(
            &sc,
            params.theta,
            &DriverMode::Speculative(plain_cfg),
            mpk::FaultSpec::none(),
            TieBreak::Fifo,
        );
        let sup = run_sim_with_faults(
            &sc,
            params.theta,
            &DriverMode::Speculative(sup_cfg),
            mpk::FaultSpec::none(),
            TieBreak::Fifo,
        );
        prop_assert_eq!(&plain.fingerprints, &sup.fingerprints);
        prop_assert_eq!(plain.elapsed, sup.elapsed);
        for s in &sup.stats {
            prop_assert_eq!(s.iterations, sc.iters);
            prop_assert_eq!(s.peers_suspected, 0);
            prop_assert_eq!(s.peers_quarantined, 0);
            prop_assert_eq!(s.peer_rejoins, 0);
            prop_assert_eq!(s.degraded_commits, 0);
        }
    }

    /// Degraded-mode termination: a rank that dies at t = 0 and never
    /// returns must not wedge the cluster. Survivors quarantine it after
    /// the configured staleness and from then on carry its partition by
    /// speculation alone (the quarantine bypass promotes its slot the
    /// moment it blocks the front). Every promoted commit is accounted
    /// against a genuinely lost message, degraded commits are a subset of
    /// loss promotions, and the whole schedule is tie-break insensitive —
    /// crash handling adds events to the kernel queue but no
    /// nondeterminism.
    #[test]
    fn degraded_mode_carries_a_dead_peer_to_completion(
        sc in synthetic_scenario(),
        params in exact_spec_params(),
        timeout_ms in 120u64..250,
    ) {
        let sc = SyntheticScenario { iters: sc.iters.max(4), ..sc };
        // FW ≥ 1: with an empty forward window nothing is ever
        // speculated, so the degraded path under test cannot engage.
        let params = SpecParams { fw: params.fw.max(1), ..params };
        let dead = sc.p - 1;
        let crash = MachineCrash::permanent(dead, SimTime::ZERO);
        let mode = crash_mode(
            &params,
            SimDuration::from_millis(timeout_ms),
            SupervisionConfig::new(1, 1),
            crash,
        );
        let fifo = run_sim_with_faults(&sc, params.theta, &mode, crash_faults(crash), TieBreak::Fifo);
        let lifo = run_sim_with_faults(&sc, params.theta, &mode, crash_faults(crash), TieBreak::Lifo);
        prop_assert_eq!(&fifo.fingerprints, &lifo.fingerprints);
        for (k, s) in fifo.stats.iter().enumerate() {
            if k == dead {
                prop_assert_eq!(s.iterations, 0, "the dead rank must exit at its crash");
                continue;
            }
            prop_assert_eq!(s.iterations, sc.iters, "survivor {} wedged", k);
            prop_assert!(s.peers_quarantined >= 1, "survivor {} never quarantined", k);
            prop_assert!(s.degraded_commits >= 1, "survivor {} never ran degraded", k);
            prop_assert!(
                s.degraded_commits <= s.speculate_through_loss_commits,
                "degraded commits must be a subset of loss promotions"
            );
            prop_assert!(
                s.speculate_through_loss_commits <= s.messages_lost,
                "survivor {}: {} promoted commits > {} lost messages",
                k, s.speculate_through_loss_commits, s.messages_lost
            );
        }
    }

    /// The event-driven bounded wait is observationally equivalent to the
    /// reference polling implementation it replaced, wherever equivalence
    /// is well-defined: under exact semantics (timing shifts cannot change
    /// values) with fault machinery armed but no faults injected, the
    /// final state matches bit-for-bit.
    #[test]
    fn event_driven_wait_matches_reference_polling(
        sc in synthetic_scenario(),
        params in exact_spec_params(),
        timeout_ms in 200u64..500,
    ) {
        let ft_cfg = params
            .build()
            .with_fault_tolerance(FaultTolerance::new(SimDuration::from_millis(timeout_ms)));
        let mode = DriverMode::Speculative(ft_cfg);
        let event = run_sim_with_faults(
            &sc, params.theta, &mode, mpk::FaultSpec::none(), TieBreak::Fifo,
        );
        let polled = run_sim_polled(
            &sc, params.theta, &mode, mpk::FaultSpec::none(), TieBreak::Fifo,
        );
        prop_assert_eq!(&event.fingerprints, &polled.fingerprints);
        for s in &event.stats {
            prop_assert_eq!(s.speculate_through_loss_commits, 0);
        }
    }

    /// Arming fault tolerance must not make exact results tie-break
    /// sensitive: the deadline timer events it adds to the kernel's queue
    /// consume sequence numbers, and FIFO, LIFO, and seeded orderings of
    /// simultaneous events must still all land on the same final state.
    #[test]
    fn ft_exact_results_are_tiebreak_insensitive(
        sc in synthetic_scenario(),
        params in exact_spec_params(),
        timeout_ms in 200u64..500,
        salt in 0u64..1_000_000,
    ) {
        let ft_cfg = params
            .build()
            .with_fault_tolerance(FaultTolerance::new(SimDuration::from_millis(timeout_ms)));
        let mode = DriverMode::Speculative(ft_cfg);
        let fifo = run_sim(&sc, params.theta, &mode, TieBreak::Fifo);
        let lifo = run_sim(&sc, params.theta, &mode, TieBreak::Lifo);
        let seeded = run_sim(&sc, params.theta, &mode, TieBreak::Seeded(salt));
        prop_assert_eq!(&fifo.fingerprints, &lifo.fingerprints);
        prop_assert_eq!(&fifo.fingerprints, &seeded.fingerprints);
    }

    /// Seeded same-virtual-time tie-breaking is deterministic: the same
    /// salt reproduces the whole run bit-for-bit — fingerprints, virtual
    /// end time, and speculation counters — for *any* configuration.
    #[test]
    fn same_salt_reproduces_the_run(
        sc in synthetic_scenario(),
        params in spec_params(),
        salt in 0u64..1_000_000,
    ) {
        let mode = DriverMode::from_params(&params);
        let a = run_sim(&sc, params.theta, &mode, TieBreak::Seeded(salt));
        let b = run_sim(&sc, params.theta, &mode, TieBreak::Seeded(salt));
        prop_assert_eq!(&a.fingerprints, &b.fingerprints);
        prop_assert_eq!(a.elapsed, b.elapsed);
        let counters = |o: &speccheck::RunOutput| -> Vec<(u64, u64, u64)> {
            o.stats
                .iter()
                .map(|s| (s.speculated_partitions, s.rollbacks, s.corrections))
                .collect()
        };
        prop_assert_eq!(counters(&a), counters(&b));
    }

    /// Lossless (floor = 0) delta exchange is bit-identical to full
    /// broadcast across the **whole** θ/FW grid: every delta frame
    /// reconstructs the sender's exact snapshot, and keyframes merely
    /// re-seed shadows. Timing is also untouched — on a size-independent
    /// latency model the virtual end times match exactly.
    #[test]
    fn lossless_delta_equals_full_broadcast_across_grid(
        sc in synthetic_scenario(),
        params in spec_params(),
    ) {
        let sc = fifo_net(&sc);
        let mode = DriverMode::from_params(&params);
        let full = run_sim(&sc, params.theta, &mode, TieBreak::Fifo);
        let delta = run_sim(
            &sc,
            params.theta,
            &delta_mode(&params, 0.0, sc.delta_keyframe),
            TieBreak::Fifo,
        );
        prop_assert_eq!(&full.fingerprints, &delta.fingerprints);
        prop_assert_eq!(full.elapsed, delta.elapsed);
        for s in &delta.stats {
            prop_assert_eq!(s.delta_frames_dropped, 0);
            prop_assert_eq!(s.iterations, sc.iters);
        }
    }

    /// A positive quantization floor offsets every exchanged value by at
    /// most `floor`, and the workload's dynamics amplify a received
    /// offset by at most the jump factor per iteration — so the final
    /// drift against the full-broadcast run stays inside the closed-form
    /// envelope `α·floor·Σ(1+jump)^k`. θ = 0 + recompute pins every
    /// other error source to zero, isolating quantization.
    #[test]
    fn quantized_delta_drift_is_bounded(
        sc in synthetic_scenario(),
        params in exact_spec_params(),
    ) {
        let sc = fifo_net(&sc);
        let floor = if sc.delta_floor > 0.0 { sc.delta_floor } else { 1e-4 };
        let mode = DriverMode::from_params(&params);
        let full = run_sim_values(&sc, 0.0, &mode, TieBreak::Fifo);
        let lossy = run_sim_values(
            &sc,
            0.0,
            &delta_mode(&params, floor, sc.delta_keyframe),
            TieBreak::Fifo,
        );
        // app_cfg: alpha = 0.1, multiplicative jumps of ±0.5.
        let (alpha, jump) = (0.1, 0.5);
        let envelope: f64 = (0..sc.iters)
            .map(|k| (1.0f64 + jump).powi(k as i32))
            .sum::<f64>()
            * alpha
            * floor;
        let bound = envelope * 4.0 + 1e-12;
        for (rank, (f, l)) in full.iter().zip(&lossy).enumerate() {
            for (i, (a, b)) in f.iter().zip(l).enumerate() {
                prop_assert!(
                    (a - b).abs() <= bound,
                    "rank {} var {}: |{} - {}| > {}", rank, i, a, b, bound
                );
            }
        }
    }

    /// Under exact semantics the *result* cannot hinge on how
    /// same-virtual-time ties are broken: FIFO, LIFO, and seeded
    /// permutations of simultaneous events all land on the same final
    /// state (scheduling affects only timing).
    #[test]
    fn exact_results_are_tiebreak_insensitive(
        sc in synthetic_scenario(),
        params in exact_spec_params(),
        salt in 0u64..1_000_000,
    ) {
        let mode = DriverMode::from_params(&params);
        let fifo = run_sim(&sc, params.theta, &mode, TieBreak::Fifo);
        let lifo = run_sim(&sc, params.theta, &mode, TieBreak::Lifo);
        let seeded = run_sim(&sc, params.theta, &mode, TieBreak::Seeded(salt));
        prop_assert_eq!(&fifo.fingerprints, &lifo.fingerprints);
        prop_assert_eq!(&fifo.fingerprints, &seeded.fingerprints);
    }
}

/// The full quarantine → rejoin → readmission lifecycle, pinned on a
/// hand-scheduled simulator run (generated scenarios cannot guarantee
/// the rejoin lands *while survivors are still running*, so this one is
/// a fixed deterministic schedule rather than a property):
///
/// * rank 2 crashes at t = 0 and stays down 100 ms — far past the
///   ~40 ms (2× loss timeout) it takes survivors to promote its first
///   missing input and quarantine it at `SupervisionConfig::new(1, 1)`;
/// * survivors run degraded (quarantine bypass promotions) until the
///   restarted rank's retransmit request is heard at ~102 ms, well
///   before their ~220 ms finish under 2 ms links × 60 iterations;
/// * being heard readmits the peer: keyframe shipped, shadows reset,
///   `peer_rejoins` counted — and the whole schedule replays
///   bit-identically.
#[test]
fn quarantined_peer_rejoins_and_is_readmitted() {
    let sc = SyntheticScenario {
        p: 3,
        n: 12,
        iters: 60,
        mips: 50.0,
        ramp: 0.0,
        latency_us: 2_000,
        jitter_frac: 0.0,
        jump_prob: 0.0,
        delta_floor: 0.0,
        delta_keyframe: 4,
        seed: 7,
    };
    let params = SpecParams {
        fw: 2,
        bw: 2,
        theta: 0.0,
        recompute: true,
    };
    let crash = MachineCrash {
        rank: 2,
        at: SimTime::ZERO,
        restart_after: SimDuration::from_millis(100),
    };
    let mode = crash_mode(
        &params,
        SimDuration::from_millis(20),
        SupervisionConfig::new(1, 1),
        crash,
    );
    let run = || run_sim_with_faults(&sc, 0.0, &mode, crash_faults(crash), TieBreak::Fifo);
    let a = run();
    let b = run();
    assert_eq!(
        a.fingerprints, b.fingerprints,
        "crash→rejoin must replay bit-for-bit"
    );
    assert_eq!(a.elapsed, b.elapsed);
    for (k, s) in a.stats.iter().enumerate() {
        assert_eq!(
            s.iterations, sc.iters,
            "rank {k} must finish every iteration"
        );
    }
    assert_eq!(
        a.stats[2].peer_restarts, 1,
        "rank 2 must restart exactly once"
    );
    for k in 0..2 {
        let s = &a.stats[k];
        assert!(
            s.peers_quarantined >= 1,
            "survivor {k} never quarantined rank 2"
        );
        assert!(s.degraded_commits >= 1, "survivor {k} never ran degraded");
        assert!(s.peer_rejoins >= 1, "survivor {k} never readmitted rank 2");
    }
}

/// The thread backend's bounded wait never spins: a timeout that runs to
/// expiry on an empty mailbox costs exactly one condvar block, observed
/// through the transport's wakeup counter. (The sim backend's equivalent
/// guarantee — exactly one timer event per expired wait — is pinned by
/// `desim`'s `SimReport::timers_fired` unit tests.)
#[test]
fn thread_backend_timed_wait_never_spins() {
    use desim::SimDuration;
    use mpk::{run_thread_cluster, ThreadClusterOptions, Transport};
    let waits = run_thread_cluster::<u8, _, _>(1, ThreadClusterOptions::default(), |t| {
        assert!(t.recv_timeout(SimDuration::from_millis(25)).is_none());
        t.timed_waits()
    });
    assert_eq!(waits[0], 1, "one expired wait must cost exactly one block");
}

proptest! {
    // Socket runs mesh real TCP connections per case, so fewer cases
    // than the in-process properties; the regression file still replays
    // any counterexample first.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Three-way transport agreement: the virtual-time simulator, the
    /// in-process thread backend, and the real TCP socket backend
    /// produce bit-identical state fingerprints under exact semantics.
    /// This is the proof that encoding, framing, kernel delivery, and
    /// decoding preserve the algorithm end to end.
    #[test]
    fn sim_thread_and_socket_agree_under_exact_semantics(
        sc in synthetic_scenario(),
        params in exact_spec_params(),
    ) {
        let mode = DriverMode::from_params(&params);
        let sim = run_sim(&sc, params.theta, &mode, TieBreak::Fifo);
        let thread = run_thread(&sc, params.theta, &mode);
        let socket = run_socket(&sc, params.theta, &mode);
        prop_assert_eq!(&sim.fingerprints, &thread.fingerprints);
        prop_assert_eq!(&sim.fingerprints, &socket.fingerprints);
    }

    /// Lossless delta exchange agrees with full broadcast on **all three
    /// backends** under exact semantics: delta frames survive real
    /// encode/frame/decode over TCP and in-process mailboxes alike, and
    /// land on the PR 6 full-broadcast fingerprints bit for bit.
    #[test]
    fn lossless_delta_agrees_across_all_three_backends(
        sc in synthetic_scenario(),
        params in exact_spec_params(),
    ) {
        let sc = fifo_net(&sc);
        let mode = delta_mode(&params, 0.0, sc.delta_keyframe);
        let full = run_sim(&sc, params.theta, &DriverMode::from_params(&params), TieBreak::Fifo);
        let sim = run_sim(&sc, params.theta, &mode, TieBreak::Fifo);
        let thread = run_thread(&sc, params.theta, &mode);
        let socket = run_socket(&sc, params.theta, &mode);
        prop_assert_eq!(&full.fingerprints, &sim.fingerprints);
        prop_assert_eq!(&sim.fingerprints, &thread.fingerprints);
        prop_assert_eq!(&sim.fingerprints, &socket.fingerprints);
    }
}

proptest! {
    // Crash schedules stall survivors for up to 2× the loss timeout in
    // *wall clock* on the thread and socket backends (the sim pays it in
    // virtual time only), so this block runs even fewer cases than the
    // plain socket properties above.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Crash fingerprints agree across all three backends, bit for bit.
    ///
    /// The schedule is chosen so the claim is *provable*, not just
    /// empirically lucky: the rank dies at t = 0, before executing
    /// anything, so every backend sees exactly one broadcast from it —
    /// the initial state. A one-entry history extrapolates to a
    /// constant, so every promotion of the dead peer's input commits the
    /// same value no matter when each backend's timeouts fire; survivors
    /// exchange exact actuals under θ = 0 + recompute. Values are
    /// therefore timing-independent even though the three backends time
    /// out at wildly different real instants — and the sim agrees with
    /// itself across tie-breaks, with real threads, and with real TCP.
    #[test]
    fn crash_fingerprints_agree_across_all_three_backends(
        sc in synthetic_scenario(),
        params in exact_spec_params(),
    ) {
        let sc = SyntheticScenario { iters: sc.iters.max(4), jitter_frac: 0.0, ..sc };
        let params = SpecParams { fw: params.fw.max(1), ..params };
        let dead = sc.p - 1;
        let crash = MachineCrash::permanent(dead, SimTime::ZERO);
        // Timeout far above both simulated (≤ 5 ms) and loopback
        // latencies: only the dead rank's inputs ever promote.
        let mode = crash_mode(
            &params,
            SimDuration::from_millis(150),
            SupervisionConfig::new(1, 1),
            crash,
        );
        let sim = run_sim_with_faults(&sc, params.theta, &mode, crash_faults(crash), TieBreak::Fifo);
        let lifo = run_sim_with_faults(&sc, params.theta, &mode, crash_faults(crash), TieBreak::Lifo);
        let thread = run_thread_with_faults(&sc, params.theta, &mode, crash_faults(crash));
        let socket = run_socket_with_faults(&sc, params.theta, &mode, crash_faults(crash));
        prop_assert_eq!(&sim.fingerprints, &lifo.fingerprints);
        prop_assert_eq!(&sim.fingerprints, &thread.fingerprints);
        prop_assert_eq!(&sim.fingerprints, &socket.fingerprints);
        for out in [&sim, &thread, &socket] {
            for (k, s) in out.stats.iter().enumerate() {
                if k == dead {
                    prop_assert_eq!(s.iterations, 0);
                    continue;
                }
                prop_assert_eq!(s.iterations, sc.iters, "survivor {} wedged", k);
                prop_assert!(s.peers_quarantined >= 1, "survivor {} never quarantined", k);
                prop_assert!(
                    s.speculate_through_loss_commits <= s.messages_lost,
                    "survivor {}: promoted commits exceed lost messages", k
                );
            }
        }
    }

    /// A crash→rejoin schedule completes on all three backends: the rank
    /// dies at t = 0 and returns at 250 ms — inside the survivors' grace
    /// window on every backend — re-enters via retransmit requests and
    /// keyframes, and every rank still commits every iteration. The sim
    /// run additionally replays bit-for-bit. (Bit-equality *across*
    /// backends is deliberately not asserted here: a rejoining rank's
    /// recovered history depends on which iteration its peers' replies
    /// carry, which is genuinely timing-dependent; the provable
    /// cross-backend equality lives in the permanent-crash property
    /// above, and the readmission semantics are pinned by the
    /// deterministic sim test.)
    #[test]
    fn crash_rejoin_completes_on_all_three_backends(
        sc in synthetic_scenario(),
        params in exact_spec_params(),
    ) {
        let sc = SyntheticScenario { iters: sc.iters.max(4), jitter_frac: 0.0, ..sc };
        let params = SpecParams { fw: params.fw.max(1), ..params };
        let crash = MachineCrash {
            rank: sc.p - 1,
            at: SimTime::ZERO,
            restart_after: SimDuration::from_millis(250),
        };
        let mode = crash_mode(
            &params,
            SimDuration::from_millis(150),
            SupervisionConfig::new(1, 2),
            crash,
        );
        let sim = run_sim_with_faults(&sc, params.theta, &mode, crash_faults(crash), TieBreak::Fifo);
        let again = run_sim_with_faults(&sc, params.theta, &mode, crash_faults(crash), TieBreak::Fifo);
        let thread = run_thread_with_faults(&sc, params.theta, &mode, crash_faults(crash));
        let socket = run_socket_with_faults(&sc, params.theta, &mode, crash_faults(crash));
        prop_assert_eq!(&sim.fingerprints, &again.fingerprints);
        prop_assert_eq!(sim.elapsed, again.elapsed);
        for out in [&sim, &thread, &socket] {
            for (k, s) in out.stats.iter().enumerate() {
                prop_assert_eq!(s.iterations, sc.iters, "rank {} wedged", k);
            }
            prop_assert_eq!(out.stats[sc.p - 1].peer_restarts, 1);
        }
    }
}

/// The socket backend inherits the zero-spin bounded wait from the shared
/// mailbox: one expired timeout on a silent wire is exactly one condvar
/// block.
#[test]
fn socket_backend_timed_wait_never_spins() {
    use desim::SimDuration;
    use mpk::{run_socket_cluster, SocketClusterOptions, Transport};
    let waits = run_socket_cluster::<u8, _, _>(1, SocketClusterOptions::default(), |t| {
        assert!(t.recv_timeout(SimDuration::from_millis(25)).is_none());
        t.timed_waits()
    });
    assert_eq!(waits[0], 1, "one expired wait must cost exactly one block");
}
