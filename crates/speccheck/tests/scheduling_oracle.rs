//! Kernel-scheduling invariant oracle over generated scenarios.
//!
//! The stackless kernel (`desim::spawn_async` / `mpk::run_sim_proc_cluster*`)
//! carries a per-grant assertion oracle (`check_scheduling`): events are
//! dispatched in nondecreasing virtual time, a rank is never granted twice
//! concurrently, and every suspension is matched by exactly one resumption.
//! These properties drive generated clusters — including the widened
//! rank-count axis up to 4096 — through the oracle, and cross-check the
//! stackless driver arm against the threaded kernel on moderate clusters.

use desim::TieBreak;
use mpk::{run_sim_proc_cluster_with_options, FaultSpec, SimClusterOptions};
use netsim::Unloaded;
use proptest::prelude::*;
use speccheck::{
    run_sim, run_sim_stackless, spec_params, synthetic_scenario_up_to, DriverMode,
    SyntheticScenario,
};

/// Run a token ring over the scenario's cluster on the stackless kernel
/// with the scheduling oracle armed: each rank sends one message per round
/// to its successor and blocks on its predecessor. O(p) messages per round,
/// so rank counts in the thousands stay cheap.
fn ring(sc: &SyntheticScenario, rounds: u64) -> desim::SimReport {
    let p = sc.p;
    let (outs, report) = run_sim_proc_cluster_with_options::<u64, _, _, _>(
        &sc.cluster(),
        sc.net(),
        Unloaded,
        FaultSpec::none(),
        SimClusterOptions {
            check_scheduling: true,
            ..Default::default()
        },
        move |mut t| async move {
            use mpk::AsyncTransport;
            let me = t.rank().0 as u64;
            let mut seen = 0u64;
            for round in 0..rounds {
                let next = mpk::Rank((t.rank().0 + 1) % t.size());
                t.send(next, mpk::Tag(round as u32), me).await;
                let env = t.recv().await;
                assert_eq!(env.src.0, (t.rank().0 + t.size() - 1) % t.size());
                seen += env.msg;
                t.compute(200).await;
            }
            // Quiesced ring: nothing further in flight, so the timed
            // receive must expire (exercising the timer path on every
            // rank under the oracle).
            assert!(t
                .recv_timeout(desim::SimDuration::from_micros(10))
                .await
                .is_none());
            seen
        },
    )
    .expect("ring must complete");
    assert_eq!(outs.len(), p);
    // Every rank receives its predecessor's id each round.
    for (r, seen) in outs.iter().enumerate() {
        let pred = ((r + p - 1) % p) as u64;
        assert_eq!(*seen, pred * rounds);
    }
    report
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The scheduling oracle holds on rings over the widened rank-count
    /// axis (log-uniform up to 4096 ranks), and the kernel's own
    /// accounting matches the workload: exactly `p` messages per round,
    /// all delivered, one expired timer per rank.
    #[test]
    fn ring_schedules_cleanly_up_to_4096_ranks(sc in synthetic_scenario_up_to(4096)) {
        let rounds = sc.iters.min(4);
        let report = ring(&sc, rounds);
        let p = sc.p as u64;
        prop_assert_eq!(report.messages_sent, p * rounds);
        prop_assert_eq!(report.messages_delivered, p * rounds);
        prop_assert_eq!(report.timers_fired, p);
        prop_assert!(report.events_processed >= p * rounds);
    }

    /// On moderate clusters the full speculative driver runs through the
    /// stackless kernel under the oracle and lands bit-identical to the
    /// threaded kernel: fingerprints, per-rank stats, and the kernel's
    /// own counters all agree.
    #[test]
    fn stackless_driver_matches_threaded_under_oracle(
        sc in synthetic_scenario_up_to(8),
        params in spec_params(),
    ) {
        let mode = DriverMode::from_params(&params);
        let threaded = run_sim(&sc, params.theta, &mode, TieBreak::Fifo);
        let stackless = run_sim_stackless(&sc, params.theta, &mode, TieBreak::Fifo);
        prop_assert_eq!(&threaded.fingerprints, &stackless.fingerprints);
        prop_assert_eq!(&threaded.stats, &stackless.stats);
        prop_assert_eq!(&threaded.kernel, &stackless.kernel);
    }
}

/// Deterministic pinned case: a 4096-rank heterogeneous ring completes
/// under the scheduling oracle with the expected kernel accounting. This
/// is the fixed large-scale anchor the generated sweep shrinks toward.
#[test]
fn pinned_4096_rank_ring() {
    let sc = SyntheticScenario {
        p: 4096,
        n: 4096,
        iters: 2,
        mips: 50.0,
        ramp: 0.5,
        latency_us: 500,
        jitter_frac: 0.4,
        jump_prob: 0.0,
        delta_floor: 0.0,
        delta_keyframe: 1,
        seed: 42,
    };
    let report = ring(&sc, 2);
    assert_eq!(report.messages_sent, 4096 * 2);
    assert_eq!(report.messages_delivered, 4096 * 2);
    assert_eq!(report.timers_fired, 4096);
}
