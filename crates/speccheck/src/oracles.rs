//! Invariant oracles: reusable checks that must hold for *every* run,
//! regardless of scenario. Each returns `Result<(), String>` so property
//! tests can `prop_assert!` on them and plain tests can `unwrap()`.

use nbody::forces::accumulate_self_soa;
use nbody::{uniform_cloud, Soa3, Vec3};
use speccore::{RunStats, SpeculativeApp};

/// Phase accounting must be exhaustive: every nanosecond of a rank's run
/// is attributed to exactly one phase (or to crash downtime), so
/// `phases.total() + downtime == total_time` bit-for-bit.
pub fn phase_partition(stats: &RunStats) -> Result<(), String> {
    let accounted = stats.phases.total() + stats.downtime;
    if accounted == stats.total_time {
        Ok(())
    } else {
        Err(format!(
            "rank {}: phases {:?} + downtime {:?} = {:?} != total_time {:?}",
            stats.rank.0, stats.phases, stats.downtime, accounted, stats.total_time
        ))
    }
}

/// Accounting invariants for speculate-through-loss commits, cluster-wide
/// over loss-only fault stacks with no crashes and latency far below the
/// retransmit timeout:
///
/// 1. **Loss bound** — cluster-wide, `Σ commits ≤ Σ messages lost`.
///    Every promotion consumes at least one genuinely dropped message:
///    the driver promotes a missing input only with *evidence* the peer
///    broadcast past the stuck iteration (so that iteration's message
///    was dropped, not late), or after a retransmit request went a full
///    further timeout unanswered (so the request or its reply was
///    dropped). An earlier, timeout-only driver violated this bound via
///    a timeout cascade — one real loss stalled a rank long enough that
///    peers timed out on its merely-late broadcasts — and the witness in
///    `crates/speccheck/proptest-regressions/` pins that scenario; the
///    per-(peer, iteration) promotion guard and the evidence/grace
///    protocol fixed it.
/// 2. **Zero-loss implication** — if no message was lost, nothing may be
///    committed through the loss path (the timeout machinery must be
///    inert on a clean network). Subsumed by 1, kept for its sharper
///    error message.
/// 3. **Slot bound** — each rank owns `(p − 1) · iters` peer-input
///    slots, and a slot commits at most once (`InputSlot::Speculated` is
///    consumed on promotion), so per-rank commits can never exceed that.
pub fn loss_commit_accounting(stats: &[RunStats], iters: u64) -> Result<(), String> {
    let p = stats.len() as u64;
    let lost: u64 = stats.iter().map(|s| s.messages_lost).sum();
    let commits: u64 = stats.iter().map(|s| s.speculate_through_loss_commits).sum();
    if lost == 0 && commits > 0 {
        return Err(format!(
            "{commits} speculate-through-loss commits on a run that lost no messages"
        ));
    }
    if commits > lost {
        return Err(format!(
            "{commits} speculate-through-loss commits exceed the {lost} messages lost"
        ));
    }
    for s in stats {
        let slots = (p - 1) * iters;
        if s.speculate_through_loss_commits > slots {
            return Err(format!(
                "rank {}: {} commits exceed the {} peer-input slots",
                s.rank.0, s.speculate_through_loss_commits, slots
            ));
        }
    }
    Ok(())
}

/// `checkpoint()` → perturb → `restore()` must reproduce the app's state
/// bit-for-bit, as observed through `fingerprint`.
pub fn checkpoint_round_trip<A: SpeculativeApp>(
    app: &mut A,
    fingerprint: impl Fn(&A) -> u64,
    perturb: impl FnOnce(&mut A),
) -> Result<(), String> {
    let before = fingerprint(app);
    let snap = app.checkpoint();
    perturb(app);
    app.restore(&snap);
    let after = fingerprint(app);
    if before == after {
        Ok(())
    } else {
        Err(format!(
            "restore did not round-trip: fingerprint {before:#018x} -> {after:#018x}"
        ))
    }
}

/// A labelled sequence must be monotone nondecreasing (up to `tol` of
/// backwards noise per step).
pub fn monotone_nondecreasing(
    values: impl IntoIterator<Item = f64>,
    tol: f64,
    label: &str,
) -> Result<(), String> {
    let mut prev: Option<f64> = None;
    for (i, v) in values.into_iter().enumerate() {
        if let Some(p) = prev {
            if v < p - tol {
                return Err(format!("{label} not monotone at index {i}: {p} -> {v}"));
            }
        }
        prev = Some(v);
    }
    Ok(())
}

/// Relative total-momentum drift of a self-gravitating cloud integrated
/// with the symmetric SoA kernel for `steps` leapfrog steps.
///
/// Internal gravity exchanges momentum in equal and opposite pairs, and
/// [`accumulate_self_soa`] evaluates each pair *once* and applies it to
/// both endpoints — so Σ m·a is a sum of exactly cancelling terms and
/// total momentum is conserved to rounding. A drift above ~1e-9 relative
/// means the kernel's symmetry (or the integrator) is broken.
pub fn momentum_drift(n: usize, seed: u64, steps: u64, dt: f64) -> f64 {
    let particles = uniform_cloud(n, seed);
    let masses: Vec<f64> = particles.iter().map(|p| p.mass).collect();
    let mut pos = Soa3::from_vec3s(&particles.iter().map(|p| p.pos).collect::<Vec<_>>());
    let mut vel = Soa3::from_vec3s(&particles.iter().map(|p| p.vel).collect::<Vec<_>>());
    let mut acc = Soa3::zeros(n);

    let momentum = |vel: &Soa3| {
        let mut m = Vec3::new(0.0, 0.0, 0.0);
        for (i, &mass) in masses.iter().enumerate() {
            let v = vel.get(i);
            m = Vec3::new(m.x + mass * v.x, m.y + mass * v.y, m.z + mass * v.z);
        }
        m
    };
    let p0 = momentum(&vel);
    let scale = (p0.x.abs() + p0.y.abs() + p0.z.abs()).max(1e-12);

    let (g, eps) = (1.0, 0.05);
    for _ in 0..steps {
        acc.fill(Vec3::new(0.0, 0.0, 0.0));
        accumulate_self_soa(&pos, &masses, &mut acc, g, eps);
        for i in 0..n {
            let (v, a) = (vel.get(i), acc.get(i));
            let nv = Vec3::new(v.x + a.x * dt, v.y + a.y * dt, v.z + a.z * dt);
            vel.set(i, nv);
            let p = pos.get(i);
            pos.set(
                i,
                Vec3::new(p.x + nv.x * dt, p.y + nv.y * dt, p.z + nv.z * dt),
            );
        }
    }
    let p1 = momentum(&vel);
    ((p1.x - p0.x).abs() + (p1.y - p0.y).abs() + (p1.z - p0.z).abs()) / scale
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotone_helper_accepts_and_rejects() {
        assert!(monotone_nondecreasing([1.0, 1.0, 2.0], 0.0, "ok").is_ok());
        assert!(monotone_nondecreasing([1.0, 0.5], 0.0, "bad").is_err());
        assert!(monotone_nondecreasing([1.0, 1.0 - 1e-12], 1e-9, "tol").is_ok());
    }

    #[test]
    fn momentum_drift_is_tiny_for_a_small_cloud() {
        let drift = momentum_drift(24, 3, 20, 1e-3);
        assert!(drift < 1e-9, "drift {drift} too large");
    }
}
