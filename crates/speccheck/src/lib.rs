//! # speccheck — deterministic conformance & property-testing harness
//!
//! The workspace's correctness claims are mostly *equivalences*: the
//! speculative driver with θ = 0 (or FW = 0) is bit-identical to the
//! blocking baseline; a [`mpk::FaultSpec::none`] run is bit-identical to
//! a fault-free one; the virtual-time simulator, the real-thread backend,
//! and the TCP socket backend agree on final values under exact
//! semantics; and a seeded run
//! reproduces bit-for-bit regardless of how same-virtual-time event ties
//! are broken. Hand-picked examples exercise each claim once; this crate
//! exercises them across *generated scenario space*:
//!
//! * [`scenario`] — plain-data scenario descriptions (machine ramps,
//!   delay/load models, FW/BW/θ grids, fault stacks, small workload
//!   instances) and [`proptest`] strategies that draw and *shrink* them
//!   with domain knowledge.
//! * [`harness`] — differential runners that execute one scenario under
//!   different transports, drivers, fault specs, or tie-breaks and
//!   reduce each run to per-rank state [fingerprints](obs::fingerprint).
//! * [`oracles`] — invariant checks valid for every run: exhaustive
//!   phase accounting, speculate-through-loss commit bounds,
//!   checkpoint/restore round-trips, momentum conservation of the
//!   symmetric N-body kernel.
//! * [`alloc`] — the counting global allocator behind the workspace's
//!   zero-allocation hot-path oracles.
//! * [`golden`] — golden-file comparison with the uniform
//!   `SPEC_UPDATE_GOLDENS=1` regeneration workflow.
//!
//! The property suites live in this crate's `tests/` directory so their
//! shrunk counterexamples persist to `crates/speccheck/proptest-regressions/`
//! (checked in; replayed before fresh cases on every run). `ci.sh` runs
//! the default 64 cases per property; the `extended` suite behind
//! `--ignored` sweeps 1024 cases for nightly use.

#![warn(missing_docs)]

pub mod alloc;
pub mod golden;
pub mod harness;
pub mod oracles;
pub mod scenario;

pub use golden::assert_matches_golden;
pub use harness::{
    drive_synthetic, drive_synthetic_aio, run_sim, run_sim_polled, run_sim_stackless,
    run_sim_stackless_with_faults, run_sim_values, run_sim_with_faults, run_socket,
    run_socket_with_faults, run_thread, run_thread_with_faults, DriverMode, KernelReport,
    PolledRecv, RunOutput,
};
pub use scenario::{
    delay_model, exact_spec_params, fault_stack_scenario, load_scenario, loss_scenario,
    spec_params, synthetic_scenario, synthetic_scenario_up_to, DelayModel, FaultScenario,
    LoadScenario, SpecParams, SyntheticScenario,
};
