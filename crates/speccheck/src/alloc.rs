//! Counting-allocator harness for zero-allocation oracles.
//!
//! A test binary that wants to assert "this hot path does not touch the
//! heap" registers [`CountingAlloc`] as its global allocator and brackets
//! the measured region with [`allocations_here`] (or uses [`count`]):
//!
//! ```ignore
//! use speccheck::alloc::{allocations_here, count, CountingAlloc};
//!
//! #[global_allocator]
//! static GLOBAL: CountingAlloc = CountingAlloc;
//!
//! let (allocs, _) = count(|| hot_path());
//! assert_eq!(allocs, 0);
//! ```
//!
//! The tallies are thread-local so concurrently running tests cannot
//! disturb each other's measurement windows.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

/// Counting allocator: thread-local tallies so concurrently running
/// tests cannot disturb a measurement window. `Cell<u64>` has no
/// destructor, so the const-initialised slot stays valid for the whole
/// thread lifetime and the hooks never allocate themselves.
pub struct CountingAlloc;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }
}

/// Heap allocations (alloc + realloc) observed on this thread so far.
pub fn allocations_here() -> u64 {
    ALLOCS.with(|c| c.get())
}

/// Run `f` and return how many heap allocations it performed on this
/// thread, alongside its result. Only meaningful when [`CountingAlloc`]
/// is the registered global allocator of the running binary.
pub fn count<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = allocations_here();
    let out = f();
    (allocations_here() - before, out)
}
