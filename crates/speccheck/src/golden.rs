//! Golden-file comparison with a uniform regeneration workflow.
//!
//! Every golden-file test in the workspace funnels through
//! [`assert_matches_golden`]: on mismatch the failure message names the
//! first differing line and tells the reader the exact command that
//! regenerates the file (`SPEC_UPDATE_GOLDENS=1 cargo test ...`), so a
//! legitimate output change never requires archaeology.

use std::path::Path;

/// Environment variable that switches golden tests from *compare* to
/// *regenerate*: when set to `1` the expected file is overwritten with
/// the actual output and the test passes.
pub const UPDATE_ENV: &str = "SPEC_UPDATE_GOLDENS";

/// True when the current process was asked to regenerate goldens.
pub fn updating() -> bool {
    std::env::var(UPDATE_ENV).map(|v| v == "1").unwrap_or(false)
}

/// Compare `actual` against the golden file at `path`.
///
/// With `SPEC_UPDATE_GOLDENS=1` the golden is rewritten instead and the
/// assertion passes. Otherwise a missing golden or any difference panics
/// with the first differing line of each side and the regeneration
/// command.
pub fn assert_matches_golden(path: &Path, actual: &str) {
    if updating() {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir).expect("create golden dir");
        }
        std::fs::write(path, actual).expect("write golden file");
        eprintln!("regenerated golden {}", path.display());
        return;
    }
    let expected = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => panic!(
            "missing golden file {} ({e}); run with {UPDATE_ENV}=1 to create it",
            path.display()
        ),
    };
    if expected == actual {
        return;
    }
    let (line_no, want, got) = first_diff(&expected, actual);
    panic!(
        "output differs from golden {} at line {line_no}:\n  golden: {want}\n  actual: {got}\n\
         if the change is intentional, regenerate with {UPDATE_ENV}=1 \
         (e.g. `{UPDATE_ENV}=1 cargo test`) and review the diff",
        path.display()
    );
}

/// First line where the two texts differ: 1-based line number plus each
/// side's line (`<end of file>` when one side is shorter).
fn first_diff(expected: &str, actual: &str) -> (usize, String, String) {
    let mut want = expected.lines();
    let mut got = actual.lines();
    let mut line_no = 0;
    loop {
        line_no += 1;
        match (want.next(), got.next()) {
            (Some(w), Some(g)) if w == g => continue,
            (Some(w), Some(g)) => return (line_no, w.to_string(), g.to_string()),
            (Some(w), None) => return (line_no, w.to_string(), "<end of file>".into()),
            (None, Some(g)) => return (line_no, "<end of file>".into(), g.to_string()),
            (None, None) => {
                // Same lines but different raw text (trailing whitespace
                // or final newline).
                return (
                    line_no,
                    format!("<{} bytes>", expected.len()),
                    format!(
                        "<{} bytes> (line split identical; bytes differ)",
                        actual.len()
                    ),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_text_passes() {
        let dir = std::env::temp_dir().join("speccheck-golden-pass");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("a.txt");
        std::fs::write(&path, "one\ntwo\n").unwrap();
        assert_matches_golden(&path, "one\ntwo\n");
    }

    #[test]
    fn first_diff_reports_line_number() {
        let (n, w, g) = first_diff("a\nb\nc\n", "a\nX\nc\n");
        assert_eq!((n, w.as_str(), g.as_str()), (2, "b", "X"));
        let (n, _, g) = first_diff("a\nb\n", "a\n");
        assert_eq!((n, g.as_str()), (2, "<end of file>"));
    }

    #[test]
    fn mismatch_names_the_env_var_and_diff_line() {
        if updating() {
            // Under `SPEC_UPDATE_GOLDENS=1` the mismatch path is
            // unreachable by design; nothing to test.
            return;
        }
        let dir = std::env::temp_dir().join("speccheck-golden-fail");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("b.txt");
        std::fs::write(&path, "one\n").unwrap();
        let err = std::panic::catch_unwind(|| assert_matches_golden(&path, "two\n"))
            .expect_err("mismatch must panic");
        let msg = err.downcast_ref::<String>().expect("string panic payload");
        assert!(
            msg.contains(UPDATE_ENV),
            "message must name {UPDATE_ENV}: {msg}"
        );
        assert!(msg.contains("line 1"), "message must name the line: {msg}");
    }
}
