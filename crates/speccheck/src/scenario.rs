//! Scenario generators: plain-data descriptions of clusters, networks,
//! speculation configs, fault stacks, and small workload instances, plus
//! [`proptest`] strategies that draw them.
//!
//! Several workspace config objects hold trait objects
//! ([`netsim::BoxedNetworkModel`], [`mpk::FaultSpec`]'s fate model) and
//! cannot be `Clone` — but shrinking and corpus replay need values that
//! are. Every generator therefore produces a small `Clone + Debug +
//! PartialEq` *description* struct with a `build()` (or equivalent)
//! method that instantiates the real object on demand, as many times as a
//! differential test needs.
//!
//! The headline scenario strategies implement
//! [`proptest::Strategy::shrink`] by hand with domain knowledge: a
//! failing case shrinks toward fewer ranks, fewer variables, fewer
//! iterations, a calm network, and a zero seed — the most debuggable
//! counterexample, not merely a numerically smaller tuple.

use desim::SimDuration;
use netsim::{
    BoxedLoadModel, BoxedNetworkModel, ClusterSpec, ConstantLatency, Duplicate, FaultStack, Jitter,
    Loss, MachineSpec, RandomSpikes, SharedMedium, TransientDelays, UniformNoise, Unloaded,
};
use proptest::prelude::*;
use proptest::TestRng;
use speccore::{CorrectionMode, DeltaExchange, FaultTolerance, SpecConfig};
use std::ops::Range;
use workloads::SyntheticConfig;

// ---------------------------------------------------------------------------
// Workload scenario: machine ramp + network + synthetic instance.
// ---------------------------------------------------------------------------

/// A complete, plain-data description of a synthetic-workload run: the
/// machine ramp, the network, and the workload instance. Everything a
/// differential test needs to build the same run twice.
#[derive(Clone, Debug, PartialEq)]
pub struct SyntheticScenario {
    /// Number of ranks (≥ 2).
    pub p: usize,
    /// Total variables across ranks (≥ `p`).
    pub n: usize,
    /// Iterations to run (≥ 2).
    pub iters: u64,
    /// Fastest machine's capacity in MIPS.
    pub mips: f64,
    /// Capacity ramp: machine `i` runs at `mips·(1 − ramp·i/(p−1))`.
    /// `0` is homogeneous; `0.8` is a 5:1 spread like the paper's 10:1
    /// workstation mix, scaled down to keep generated runs quick.
    pub ramp: f64,
    /// Base one-way message latency in microseconds.
    pub latency_us: u64,
    /// Jitter fraction (`0` = deterministic constant latency).
    pub jitter_frac: f64,
    /// Probability per iteration of a discontinuous value jump
    /// (speculation poison; exercises the misspeculation paths).
    pub jump_prob: f64,
    /// Quantization floor for the delta-exchange axis (`0` = lossless
    /// deltas). Only consulted by properties that opt into delta mode.
    pub delta_floor: f64,
    /// Keyframe interval for the delta-exchange axis (≥ 1; `1` = every
    /// frame is a full snapshot).
    pub delta_keyframe: u64,
    /// Seed for the workload's jump process and any jittered network.
    pub seed: u64,
}

impl SyntheticScenario {
    /// The machine ramp as a [`ClusterSpec`], fastest first.
    pub fn cluster(&self) -> ClusterSpec {
        let denom = (self.p - 1).max(1) as f64;
        ClusterSpec::new(
            (0..self.p)
                .map(|i| MachineSpec::new(self.mips * (1.0 - self.ramp * i as f64 / denom)))
                .collect(),
        )
    }

    /// The network model (constant latency, or jittered around it).
    pub fn net(&self) -> BoxedNetworkModel {
        let base = ConstantLatency(SimDuration::from_micros(self.latency_us));
        if self.jitter_frac > 0.0 {
            Box::new(Jitter::new(base, self.jitter_frac, self.seed))
        } else {
            Box::new(base)
        }
    }

    /// Contiguous even partition of the `n` variables over `p` ranks.
    pub fn ranges(&self) -> Vec<Range<usize>> {
        (0..self.p)
            .map(|i| i * self.n / self.p..(i + 1) * self.n / self.p)
            .collect()
    }

    /// The scenario's delta-exchange policy at this floor/keyframe point
    /// (properties override the floor to pin lossless or lossy behavior).
    pub fn delta_policy(&self) -> DeltaExchange {
        DeltaExchange::new(self.delta_floor, self.delta_keyframe)
    }

    /// The workload config at acceptance threshold `theta`.
    pub fn app_cfg(&self, theta: f64) -> SyntheticConfig {
        SyntheticConfig {
            theta,
            jump_prob: self.jump_prob,
            seed: self.seed,
            // Keep generated runs cheap: the default f_comp (70 000 ops
            // per variable) is the paper's N-body scale, far more virtual
            // work than a conformance check needs.
            f_comp: 200,
            ..Default::default()
        }
    }
}

/// Strategy for [`SyntheticScenario`] with domain-aware shrinking.
#[derive(Clone, Copy, Debug)]
pub struct SyntheticScenarioStrategy {
    /// Largest rank count the strategy will draw (inclusive).
    max_p: usize,
}

impl Default for SyntheticScenarioStrategy {
    fn default() -> Self {
        SyntheticScenarioStrategy { max_p: 5 }
    }
}

/// Draw a complete workload scenario: 2–5 ranks, 8–48 variables, 2–8
/// iterations, a 1:1–5:1 machine ramp, 0–5 ms latency with optional
/// jitter, and an occasional value jump.
pub fn synthetic_scenario() -> SyntheticScenarioStrategy {
    SyntheticScenarioStrategy::default()
}

/// [`synthetic_scenario`] with the rank-count axis widened to `max_p`
/// (clamped to at least 2). Above the default ceiling of 5 the rank count
/// is drawn log-uniformly — half the mass stays on small clusters where
/// shrinking is cheap, but every doubling up to `max_p` (e.g. 4096) is hit
/// with equal probability, which is what a scheduling-oracle sweep wants.
/// Shrinking halves `p` toward 2, so a failing 4096-rank case walks down
/// through 2048, 1024, … rather than replaying giant clusters.
pub fn synthetic_scenario_up_to(max_p: usize) -> SyntheticScenarioStrategy {
    SyntheticScenarioStrategy {
        max_p: max_p.max(2),
    }
}

impl Strategy for SyntheticScenarioStrategy {
    type Value = SyntheticScenario;

    fn sample(&self, rng: &mut TestRng) -> SyntheticScenario {
        // Keep the draw sequence for the default ceiling bit-identical to
        // the historical strategy (one `below(4)` call) so checked-in
        // proptest-regressions seeds replay the same scenarios.
        let p = if self.max_p <= 5 {
            2 + rng.below((self.max_p - 1) as u64) as usize
        } else {
            let span = (self.max_p - 1) as u64;
            let bits = 64 - span.leading_zeros() as u64;
            let k = rng.below(bits);
            2 + rng.below((1u64 << (k + 1)).min(span)) as usize
        };
        SyntheticScenario {
            p,
            n: p.max(8) + rng.below(40) as usize,
            iters: 2 + rng.below(7),
            mips: 5.0 + rng.unit_f64() * 45.0,
            ramp: rng.unit_f64() * 0.8,
            latency_us: rng.below(5_000),
            jitter_frac: if rng.below(2) == 0 {
                0.0
            } else {
                0.2 + rng.unit_f64() * 0.7
            },
            jump_prob: rng.unit_f64() * 0.3,
            delta_floor: if rng.below(2) == 0 {
                0.0
            } else {
                rng.unit_f64() * 1e-3
            },
            delta_keyframe: 1 + rng.below(8),
            seed: rng.next_u64(),
        }
    }

    fn shrink(&self, v: &SyntheticScenario) -> Vec<SyntheticScenario> {
        let mut out = Vec::new();
        let mut push = |s: SyntheticScenario| {
            if s != *v {
                out.push(s);
            }
        };
        // Most aggressive first: collapse each axis to its floor, then
        // halve. Every candidate changes exactly one axis so the greedy
        // shrinker can attribute the failure.
        push(SyntheticScenario { p: 2, ..v.clone() });
        push(SyntheticScenario {
            p: (v.p / 2).max(2),
            ..v.clone()
        });
        push(SyntheticScenario {
            n: v.p.max(8),
            ..v.clone()
        });
        push(SyntheticScenario {
            n: (v.n / 2).max(v.p.max(8)),
            ..v.clone()
        });
        push(SyntheticScenario {
            iters: 2,
            ..v.clone()
        });
        push(SyntheticScenario {
            iters: (v.iters - 1).max(2),
            ..v.clone()
        });
        push(SyntheticScenario {
            ramp: 0.0,
            ..v.clone()
        });
        push(SyntheticScenario {
            latency_us: 0,
            ..v.clone()
        });
        push(SyntheticScenario {
            latency_us: v.latency_us / 2,
            ..v.clone()
        });
        push(SyntheticScenario {
            jitter_frac: 0.0,
            ..v.clone()
        });
        push(SyntheticScenario {
            jump_prob: 0.0,
            ..v.clone()
        });
        push(SyntheticScenario {
            delta_floor: 0.0,
            ..v.clone()
        });
        push(SyntheticScenario {
            delta_keyframe: 1,
            ..v.clone()
        });
        push(SyntheticScenario {
            mips: 10.0,
            ..v.clone()
        });
        push(SyntheticScenario {
            seed: 0,
            ..v.clone()
        });
        out
    }
}

// ---------------------------------------------------------------------------
// Speculation-config grid.
// ---------------------------------------------------------------------------

/// A point in the FW/BW/θ/correction grid of [`SpecConfig`] plus the
/// workload-side acceptance threshold θ (which lives in the app config
/// for the synthetic workload, not in [`SpecConfig`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SpecParams {
    /// Forward window (0 = baseline: block on every message).
    pub fw: u32,
    /// Backward window (history depth for extrapolation).
    pub bw: usize,
    /// Acceptance threshold θ for the workload's check.
    pub theta: f64,
    /// Use [`CorrectionMode::Recompute`] instead of incremental
    /// correction.
    pub recompute: bool,
}

impl SpecParams {
    /// The driver configuration for this grid point.
    pub fn build(&self) -> SpecConfig {
        let cfg = if self.fw == 0 {
            SpecConfig::baseline()
        } else {
            SpecConfig::speculative(self.fw)
        };
        let cfg = cfg.with_backward_window(self.bw);
        if self.recompute {
            cfg.with_correction(CorrectionMode::Recompute)
        } else {
            cfg
        }
    }

    /// True when this grid point has *exact* semantics: θ = 0 accepts
    /// nothing, and recompute discards every speculative result — so the
    /// run must be bit-identical to the non-speculative baseline and
    /// across transports and tie-breaks.
    pub fn is_exact(&self) -> bool {
        self.theta == 0.0 && (self.recompute || self.fw == 0)
    }
}

/// Strategy over the full grid (θ ∈ [0, 0.5), both correction modes).
#[derive(Clone, Copy, Debug, Default)]
pub struct SpecParamsStrategy {
    exact_only: bool,
}

/// Draw any speculation grid point: FW 0–3, BW 1–3, θ ∈ [0, 0.5),
/// either correction mode.
pub fn spec_params() -> SpecParamsStrategy {
    SpecParamsStrategy { exact_only: false }
}

/// Draw only *exact-semantics* grid points (θ = 0 + recompute, FW 1–3):
/// the configurations for which the paper's scheme is a pure latency
/// optimization and results must be bit-identical to the baseline.
pub fn exact_spec_params() -> SpecParamsStrategy {
    SpecParamsStrategy { exact_only: true }
}

impl Strategy for SpecParamsStrategy {
    type Value = SpecParams;

    fn sample(&self, rng: &mut TestRng) -> SpecParams {
        if self.exact_only {
            SpecParams {
                fw: 1 + rng.below(3) as u32,
                bw: 1 + rng.below(3) as usize,
                theta: 0.0,
                recompute: true,
            }
        } else {
            SpecParams {
                fw: rng.below(4) as u32,
                bw: 1 + rng.below(3) as usize,
                theta: rng.unit_f64() * 0.5,
                recompute: rng.below(2) == 0,
            }
        }
    }

    fn shrink(&self, v: &SpecParams) -> Vec<SpecParams> {
        let fw_floor = if self.exact_only { 1 } else { 0 };
        let mut out = Vec::new();
        let mut push = |s: SpecParams| {
            if s != *v {
                out.push(s);
            }
        };
        push(SpecParams { fw: fw_floor, ..*v });
        if v.fw > fw_floor {
            push(SpecParams { fw: v.fw - 1, ..*v });
        }
        push(SpecParams { bw: 1, ..*v });
        if !self.exact_only {
            push(SpecParams { theta: 0.0, ..*v });
            push(SpecParams {
                theta: v.theta / 2.0,
                ..*v
            });
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Delay / load model menagerie.
// ---------------------------------------------------------------------------

/// Plain-data description of a network delay model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum DelayModel {
    /// Fixed one-way latency.
    Constant {
        /// Latency in microseconds.
        us: u64,
    },
    /// Latency plus serialization on a contended shared medium.
    Shared {
        /// Base latency in microseconds.
        us: u64,
        /// Medium bandwidth in bytes per second.
        bytes_per_sec: f64,
    },
    /// Seeded multiplicative jitter around a constant base.
    Jittered {
        /// Base latency in microseconds.
        us: u64,
        /// Jitter fraction in `(0, 1)`.
        frac: f64,
        /// Jitter seed.
        seed: u64,
    },
    /// Occasional large stalls on top of a constant base.
    Transient {
        /// Base latency in microseconds.
        us: u64,
        /// Per-message stall probability.
        prob: f64,
        /// Stall length in milliseconds.
        extra_ms: u64,
        /// Stall seed.
        seed: u64,
    },
}

impl DelayModel {
    /// Instantiate the described [`netsim::NetworkModel`].
    pub fn build(&self) -> BoxedNetworkModel {
        match *self {
            DelayModel::Constant { us } => Box::new(ConstantLatency(SimDuration::from_micros(us))),
            DelayModel::Shared { us, bytes_per_sec } => Box::new(SharedMedium::new(
                SimDuration::from_micros(us),
                bytes_per_sec,
            )),
            DelayModel::Jittered { us, frac, seed } => Box::new(Jitter::new(
                ConstantLatency(SimDuration::from_micros(us)),
                frac,
                seed,
            )),
            DelayModel::Transient {
                us,
                prob,
                extra_ms,
                seed,
            } => Box::new(TransientDelays::new(
                ConstantLatency(SimDuration::from_micros(us)),
                prob,
                SimDuration::from_millis(extra_ms),
                seed,
            )),
        }
    }
}

/// Draw one of the four delay-model families with small parameters.
pub fn delay_model() -> impl Strategy<Value = DelayModel> {
    prop_oneof![
        (0u64..5_000).prop_map(|us| DelayModel::Constant { us }),
        (10u64..2_000, 1e5f64..1e8)
            .prop_map(|(us, bytes_per_sec)| DelayModel::Shared { us, bytes_per_sec }),
        (10u64..2_000, 0.1f64..0.9, 0u64..1_000)
            .prop_map(|(us, frac, seed)| { DelayModel::Jittered { us, frac, seed } }),
        (10u64..1_000, 0.01f64..0.2, 1u64..20, 0u64..1_000).prop_map(
            |(us, prob, extra_ms, seed)| DelayModel::Transient {
                us,
                prob,
                extra_ms,
                seed
            }
        ),
    ]
}

/// Plain-data description of a background-load model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LoadScenario {
    /// No background load.
    Unloaded,
    /// Seeded multiplicative slowdown spikes.
    Spikes {
        /// Per-quantum spike probability.
        prob: f64,
        /// Slowdown factor during a spike.
        slowdown: f64,
        /// Spike seed.
        seed: u64,
    },
    /// Seeded uniform capacity noise.
    Noise {
        /// Noise fraction in `(0, 1)`.
        frac: f64,
        /// Noise seed.
        seed: u64,
    },
}

impl LoadScenario {
    /// Instantiate the described [`netsim::LoadModel`].
    pub fn build(&self) -> BoxedLoadModel {
        match *self {
            LoadScenario::Unloaded => Box::new(Unloaded),
            LoadScenario::Spikes {
                prob,
                slowdown,
                seed,
            } => Box::new(RandomSpikes::new(prob, slowdown, seed)),
            LoadScenario::Noise { frac, seed } => Box::new(UniformNoise::new(frac, seed)),
        }
    }
}

/// Draw a background-load scenario (unloaded, spikes, or noise).
pub fn load_scenario() -> impl Strategy<Value = LoadScenario> {
    prop_oneof![
        Just(LoadScenario::Unloaded),
        (0.05f64..0.4, 1.5f64..5.0, 0u64..1_000).prop_map(|(prob, slowdown, seed)| {
            LoadScenario::Spikes {
                prob,
                slowdown,
                seed,
            }
        }),
        (0.05f64..0.5, 0u64..1_000).prop_map(|(frac, seed)| LoadScenario::Noise { frac, seed }),
    ]
}

// ---------------------------------------------------------------------------
// Fault stacks.
// ---------------------------------------------------------------------------

/// Plain-data description of a message-fault stack plus the driver-side
/// tolerance needed to survive it.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultScenario {
    /// Per-message loss probability.
    pub loss_prob: f64,
    /// Per-message duplication probability (`0` for loss-only stacks).
    pub dup_prob: f64,
    /// Fate seed.
    pub seed: u64,
    /// Driver retransmit timeout in milliseconds. Generators keep this
    /// far above any generated latency so the "speculate-through-loss
    /// commits ≤ messages lost" accounting oracle is valid.
    pub timeout_ms: u64,
}

impl FaultScenario {
    /// The message-fate stack ([`mpk::FaultSpec`] wants a model).
    pub fn build<M>(&self) -> mpk::FaultSpec<M> {
        let mut stack = FaultStack::new().with(Loss::new(self.loss_prob, self.seed));
        if self.dup_prob > 0.0 {
            stack = stack.with(Duplicate::new(self.dup_prob, self.seed.wrapping_add(1)));
        }
        mpk::FaultSpec::new(stack)
    }

    /// The driver-side tolerance matching [`FaultScenario::timeout_ms`].
    pub fn tolerance(&self) -> FaultTolerance {
        FaultTolerance::new(SimDuration::from_millis(self.timeout_ms))
    }
}

/// Draw a loss-only fault stack: 2–20% loss, 20–80 ms retransmit
/// timeout. Pair with latencies ≤ 5 ms so every loss is detected and
/// retransmitted well before the next one.
pub fn loss_scenario() -> impl Strategy<Value = FaultScenario> {
    (0.02f64..0.2, 0u64..1_000, 20u64..80).prop_map(|(loss_prob, seed, timeout_ms)| FaultScenario {
        loss_prob,
        dup_prob: 0.0,
        seed,
        timeout_ms,
    })
}

/// Draw a loss + duplication stack (accounting oracles that require
/// loss-only stacks should use [`loss_scenario`] instead).
pub fn fault_stack_scenario() -> impl Strategy<Value = FaultScenario> {
    (0.02f64..0.2, 0.0f64..0.2, 0u64..1_000, 20u64..80).prop_map(
        |(loss_prob, dup_prob, seed, timeout_ms)| FaultScenario {
            loss_prob,
            dup_prob,
            seed,
            timeout_ms,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::from_state(0x5eed_1234_5678_9abc)
    }

    #[test]
    fn scenario_invariants_hold_over_many_samples() {
        let s = synthetic_scenario();
        let mut r = rng();
        for _ in 0..500 {
            let sc = s.sample(&mut r);
            assert!((2..=5).contains(&sc.p));
            assert!(sc.n >= sc.p, "every rank must own at least one variable");
            assert!(sc.iters >= 2);
            assert!(sc.ramp < 0.9, "slowest machine must keep >10% capacity");
            assert!(sc.delta_keyframe >= 1);
            assert!(sc.delta_floor >= 0.0 && sc.delta_floor.is_finite());
            // The builders must accept every generated value.
            let cluster = sc.cluster();
            assert_eq!(cluster.len(), sc.p);
            let ranges = sc.ranges();
            assert_eq!(ranges.last().unwrap().end, sc.n);
            let _ = sc.net();
            let _ = sc.delta_policy();
        }
    }

    #[test]
    fn scenario_shrink_moves_each_axis_toward_its_floor() {
        let s = synthetic_scenario();
        let mut r = rng();
        let sc = s.sample(&mut r);
        for cand in s.shrink(&sc) {
            assert_ne!(cand, sc, "shrink candidates must differ from the value");
            assert!(cand.p <= sc.p);
            assert!(cand.n <= sc.n);
            assert!(cand.iters <= sc.iters);
        }
        // A floor value has nowhere left to go on the collapsed axes.
        let floor = SyntheticScenario {
            p: 2,
            n: 8,
            iters: 2,
            mips: 10.0,
            ramp: 0.0,
            latency_us: 0,
            jitter_frac: 0.0,
            jump_prob: 0.0,
            delta_floor: 0.0,
            delta_keyframe: 1,
            seed: 0,
        };
        assert!(s.shrink(&floor).is_empty());
    }

    #[test]
    fn exact_spec_params_are_exact() {
        let s = exact_spec_params();
        let mut r = rng();
        for _ in 0..200 {
            let p = s.sample(&mut r);
            assert!(p.is_exact());
            assert!(p.fw >= 1, "exact grid still speculates");
        }
        // And shrinking never leaves the exact subgrid.
        let p = s.sample(&mut r);
        for cand in s.shrink(&p) {
            assert!(cand.is_exact());
            assert!(cand.fw >= 1);
        }
    }

    #[test]
    fn builders_construct_real_models() {
        let mut r = rng();
        for _ in 0..100 {
            let _ = delay_model().sample(&mut r).build();
            let _ = load_scenario().sample(&mut r).build();
            let f = loss_scenario().sample(&mut r);
            assert_eq!(f.dup_prob, 0.0);
            let _ = f.build::<u64>();
            assert!(f.timeout_ms >= 20);
        }
    }
}
