//! Differential run harness: execute one described scenario under
//! different transports, drivers, fault specs, or event tie-breaks, and
//! reduce each run to per-rank state fingerprints plus driver stats so
//! properties can compare runs bit-for-bit.

use crate::scenario::{SpecParams, SyntheticScenario};
use desim::{SimDuration, SimTime, TieBreak};
use mpk::{
    run_sim_cluster_with_options, run_sim_proc_cluster_with_options, run_socket_cluster,
    run_socket_cluster_with_faults, run_thread_cluster, run_thread_cluster_with_fault_spec,
    Envelope, FaultCounters, FaultSpec, Rank, SimClusterOptions, SocketClusterOptions, Tag,
    ThreadClusterOptions, Transport,
};
use speccore::{
    run_baseline, run_baseline_aio, run_speculative, run_speculative_aio, IterMsg, RunStats,
    SpecConfig,
};

/// What a conformance run reduces to: one state fingerprint and one
/// [`RunStats`] per rank, plus the run's virtual end time (0 for thread
/// runs, whose wall clock is not comparable).
#[derive(Clone, Debug)]
pub struct RunOutput {
    /// Per-rank bit-exact fingerprints of the final workload state.
    pub fingerprints: Vec<u64>,
    /// Per-rank driver statistics.
    pub stats: Vec<RunStats>,
    /// Virtual end time in seconds (simulation runs only).
    pub elapsed: f64,
    /// The simulation kernel's own counters (simulation runs only) —
    /// compared bit-for-bit between the threaded and stackless kernels by
    /// the differential suite.
    pub kernel: Option<KernelReport>,
}

/// The comparable subset of [`desim::SimReport`]: every kernel counter
/// that must agree between the threaded and the stackless execution model
/// for a run to count as bit-identical.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KernelReport {
    /// Virtual end time in nanoseconds.
    pub end_time_ns: u64,
    /// Events the kernel dispatched.
    pub events_processed: u64,
    /// Messages scheduled for delivery.
    pub messages_sent: u64,
    /// Messages that reached a mailbox.
    pub messages_delivered: u64,
    /// Deadline timers that expired and woke a timed receive.
    pub timers_fired: u64,
}

impl KernelReport {
    fn from_report(report: &desim::SimReport) -> Self {
        KernelReport {
            end_time_ns: report.end_time.as_nanos(),
            events_processed: report.events_processed,
            messages_sent: report.messages_sent,
            messages_delivered: report.messages_delivered,
            timers_fired: report.timers_fired,
        }
    }
}

/// How to drive the app: the plain non-speculative loop or the
/// speculative driver under a given configuration.
// Short-lived test-harness selector, cloned a handful of times per run;
// boxing the config would only move the bytes, not save any.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug)]
pub enum DriverMode {
    /// [`run_baseline`]: block on every message (the paper's Figure 1).
    Baseline,
    /// [`run_speculative`] under the given config (Figure 3).
    Speculative(SpecConfig),
}

impl DriverMode {
    /// The speculative mode for a grid point.
    pub fn from_params(params: &SpecParams) -> Self {
        DriverMode::Speculative(params.build())
    }
}

/// A transport adapter reimplementing the pre-event-driven
/// `recv_timeout`: poll `try_recv` in `timeout / 16` quanta, the last
/// step landing exactly on the deadline. The workspace's transports wait
/// event-driven now; this reference implementation survives so
/// conformance properties can prove the two are observationally
/// equivalent where they must be (exact semantics, no faults firing) and
/// so experiments can measure what the polling cost.
pub struct PolledRecv<'t, T>(pub &'t mut T);

impl<T: Transport> Transport for PolledRecv<'_, T> {
    type Msg = T::Msg;

    fn rank(&self) -> Rank {
        self.0.rank()
    }

    fn size(&self) -> usize {
        self.0.size()
    }

    fn send(&mut self, to: Rank, tag: Tag, msg: Self::Msg) {
        self.0.send(to, tag, msg);
    }

    fn try_recv(&mut self) -> Option<Envelope<Self::Msg>> {
        self.0.try_recv()
    }

    fn recv(&mut self) -> Envelope<Self::Msg> {
        self.0.recv()
    }

    fn recv_timeout(&mut self, timeout: SimDuration) -> Option<Envelope<Self::Msg>> {
        if let Some(env) = self.0.try_recv() {
            return Some(env);
        }
        if timeout == SimDuration::ZERO {
            return None;
        }
        let deadline = self.0.now() + timeout;
        let quantum = SimDuration::from_nanos((timeout.as_nanos() / 16).max(1));
        loop {
            let now = self.0.now();
            if now >= deadline {
                return None;
            }
            let step = quantum.min(deadline - now);
            self.0.sleep(step);
            if let Some(env) = self.0.try_recv() {
                return Some(env);
            }
        }
    }

    fn sleep(&mut self, d: SimDuration) {
        self.0.sleep(d);
    }

    fn fault_counters(&self) -> FaultCounters {
        self.0.fault_counters()
    }

    fn compute(&mut self, ops: u64) {
        self.0.compute(ops);
    }

    fn now(&self) -> SimTime {
        self.0.now()
    }
}

/// Run the scenario's synthetic app on any transport and reduce to
/// (fingerprint, stats). This is the *one* definition both the simulated
/// and the threaded differential arms execute — the runs differ only in
/// the transport handed in.
pub fn drive_synthetic<T: Transport<Msg = IterMsg<Vec<f64>>>>(
    t: &mut T,
    sc: &SyntheticScenario,
    theta: f64,
    mode: &DriverMode,
) -> (u64, RunStats) {
    let ranges = sc.ranges();
    let mut app = workloads::SyntheticApp::new(sc.n, &ranges, t.rank().0, sc.app_cfg(theta));
    let stats = match mode {
        DriverMode::Baseline => run_baseline(t, &mut app, sc.iters),
        DriverMode::Speculative(cfg) => run_speculative(t, &mut app, sc.iters, cfg.clone()),
    };
    (app.fingerprint(), stats)
}

/// The `async` twin of [`drive_synthetic`]: the same one definition of the
/// workload run, for stackless (suspending) transports.
pub async fn drive_synthetic_aio<T: mpk::AsyncTransport<Msg = IterMsg<Vec<f64>>>>(
    t: &mut T,
    sc: &SyntheticScenario,
    theta: f64,
    mode: &DriverMode,
) -> (u64, RunStats) {
    let ranges = sc.ranges();
    let mut app = workloads::SyntheticApp::new(sc.n, &ranges, t.rank().0, sc.app_cfg(theta));
    let stats = match mode {
        DriverMode::Baseline => run_baseline_aio(t, &mut app, sc.iters).await,
        DriverMode::Speculative(cfg) => {
            run_speculative_aio(t, &mut app, sc.iters, cfg.clone()).await
        }
    };
    (app.fingerprint(), stats)
}

/// Run the scenario on the virtual-time simulator, fault-free, under the
/// given event tie-break.
pub fn run_sim(sc: &SyntheticScenario, theta: f64, mode: &DriverMode, tie: TieBreak) -> RunOutput {
    run_sim_with_faults(sc, theta, mode, FaultSpec::none(), tie)
}

/// Run the scenario on the virtual-time simulator with an explicit fault
/// spec and event tie-break.
pub fn run_sim_with_faults(
    sc: &SyntheticScenario,
    theta: f64,
    mode: &DriverMode,
    faults: FaultSpec<IterMsg<Vec<f64>>>,
    tie: TieBreak,
) -> RunOutput {
    let scenario = sc.clone();
    let mode = mode.clone();
    let (outs, report) = run_sim_cluster_with_options::<IterMsg<Vec<f64>>, _, _>(
        &sc.cluster(),
        sc.net(),
        netsim::Unloaded,
        faults,
        SimClusterOptions {
            tie_break: tie,
            ..Default::default()
        },
        move |t| drive_synthetic(t, &scenario, theta, &mode),
    )
    .expect("generated scenario must complete");
    let (fingerprints, stats) = outs.into_iter().unzip();
    RunOutput {
        fingerprints,
        stats,
        elapsed: report.end_time.as_secs_f64(),
        kernel: Some(KernelReport::from_report(&report)),
    }
}

/// [`run_sim`] on the *stackless* kernel: every rank is a resumable state
/// machine inside the event kernel (no OS thread per rank), with the
/// kernel's scheduling-invariant oracle armed. Produces bit-identical
/// output to [`run_sim`] — that is the tentpole claim the differential
/// suite checks.
pub fn run_sim_stackless(
    sc: &SyntheticScenario,
    theta: f64,
    mode: &DriverMode,
    tie: TieBreak,
) -> RunOutput {
    run_sim_stackless_with_faults(sc, theta, mode, FaultSpec::none(), tie)
}

/// [`run_sim_stackless`] with an explicit fault spec and event tie-break.
///
/// Scheduling checks are always on in the stackless arms: they are cheap
/// per-grant assertions, and running every differential case under the
/// oracle is free coverage.
pub fn run_sim_stackless_with_faults(
    sc: &SyntheticScenario,
    theta: f64,
    mode: &DriverMode,
    faults: FaultSpec<IterMsg<Vec<f64>>>,
    tie: TieBreak,
) -> RunOutput {
    let (outs, report) = run_sim_proc_cluster_with_options::<IterMsg<Vec<f64>>, _, _, _>(
        &sc.cluster(),
        sc.net(),
        netsim::Unloaded,
        faults,
        SimClusterOptions {
            tie_break: tie,
            check_scheduling: true,
            ..Default::default()
        },
        move |mut t| {
            let scenario = sc.clone();
            let mode = mode.clone();
            async move { drive_synthetic_aio(&mut t, &scenario, theta, &mode).await }
        },
    )
    .expect("generated scenario must complete");
    let (fingerprints, stats) = outs.into_iter().unzip();
    RunOutput {
        fingerprints,
        stats,
        elapsed: report.end_time.as_secs_f64(),
        kernel: Some(KernelReport::from_report(&report)),
    }
}

/// Run the scenario on the simulator and return each rank's final
/// variable values — for properties that bound *numeric* drift (e.g. the
/// quantized delta exchange) rather than compare fingerprints.
pub fn run_sim_values(
    sc: &SyntheticScenario,
    theta: f64,
    mode: &DriverMode,
    tie: TieBreak,
) -> Vec<Vec<f64>> {
    let scenario = sc.clone();
    let mode = mode.clone();
    let (outs, _) = run_sim_cluster_with_options::<IterMsg<Vec<f64>>, _, _>(
        &sc.cluster(),
        sc.net(),
        netsim::Unloaded,
        FaultSpec::none(),
        SimClusterOptions {
            tie_break: tie,
            ..Default::default()
        },
        move |t| {
            let ranges = scenario.ranges();
            let mut app = workloads::SyntheticApp::new(
                scenario.n,
                &ranges,
                t.rank().0,
                scenario.app_cfg(theta),
            );
            match &mode {
                DriverMode::Baseline => {
                    run_baseline(t, &mut app, scenario.iters);
                }
                DriverMode::Speculative(cfg) => {
                    run_speculative(t, &mut app, scenario.iters, cfg.clone());
                }
            }
            app.values().to_vec()
        },
    )
    .expect("generated scenario must complete");
    outs
}

/// [`run_sim_with_faults`] with the reference *polling* receive of
/// [`PolledRecv`] in place of the event-driven one: every bounded wait
/// advances in quanta instead of blocking to an exact deadline.
pub fn run_sim_polled(
    sc: &SyntheticScenario,
    theta: f64,
    mode: &DriverMode,
    faults: FaultSpec<IterMsg<Vec<f64>>>,
    tie: TieBreak,
) -> RunOutput {
    let scenario = sc.clone();
    let mode = mode.clone();
    let (outs, report) = run_sim_cluster_with_options::<IterMsg<Vec<f64>>, _, _>(
        &sc.cluster(),
        sc.net(),
        netsim::Unloaded,
        faults,
        SimClusterOptions {
            tie_break: tie,
            ..Default::default()
        },
        move |t| {
            let mut polled = PolledRecv(t);
            drive_synthetic(&mut polled, &scenario, theta, &mode)
        },
    )
    .expect("generated scenario must complete");
    let (fingerprints, stats) = outs.into_iter().unzip();
    RunOutput {
        fingerprints,
        stats,
        elapsed: report.end_time.as_secs_f64(),
        kernel: Some(KernelReport::from_report(&report)),
    }
}

/// Run the scenario on real OS threads (in-process mailboxes, no
/// injected latency — the values, not the timing, are under test).
pub fn run_thread(sc: &SyntheticScenario, theta: f64, mode: &DriverMode) -> RunOutput {
    let scenario = sc.clone();
    let mode = mode.clone();
    let outs = run_thread_cluster::<IterMsg<Vec<f64>>, _, _>(
        sc.p,
        ThreadClusterOptions::default(),
        move |t| drive_synthetic(t, &scenario, theta, &mode),
    );
    let (fingerprints, stats) = outs.into_iter().unzip();
    RunOutput {
        fingerprints,
        stats,
        elapsed: 0.0,
        kernel: None,
    }
}

/// [`run_thread`] with an explicit fault spec (loss model, crash plan,
/// corruptor): the thread backend's wall-clock fault layer applies the
/// same [`FaultSpec`] semantics the simulator does, so crash→rejoin
/// schedules can be exercised on real OS threads.
pub fn run_thread_with_faults(
    sc: &SyntheticScenario,
    theta: f64,
    mode: &DriverMode,
    faults: FaultSpec<IterMsg<Vec<f64>>>,
) -> RunOutput {
    let scenario = sc.clone();
    let mode = mode.clone();
    let outs = run_thread_cluster_with_fault_spec::<IterMsg<Vec<f64>>, _, _>(
        sc.p,
        ThreadClusterOptions::default(),
        faults,
        move |t| drive_synthetic(t, &scenario, theta, &mode),
    );
    let (fingerprints, stats) = outs.into_iter().unzip();
    RunOutput {
        fingerprints,
        stats,
        elapsed: 0.0,
        kernel: None,
    }
}

/// [`run_socket`] with an explicit fault spec applied at the socket
/// send path — frames are dropped, duplicated, or suppressed (crashed
/// destination) before they reach the kernel, over otherwise-real TCP.
pub fn run_socket_with_faults(
    sc: &SyntheticScenario,
    theta: f64,
    mode: &DriverMode,
    faults: FaultSpec<IterMsg<Vec<f64>>>,
) -> RunOutput {
    let scenario = sc.clone();
    let mode = mode.clone();
    let outs = run_socket_cluster_with_faults::<IterMsg<Vec<f64>>, _, _>(
        sc.p,
        SocketClusterOptions::default(),
        faults,
        move |t| drive_synthetic(t, &scenario, theta, &mode),
    );
    let (fingerprints, stats) = outs.into_iter().unzip();
    RunOutput {
        fingerprints,
        stats,
        elapsed: 0.0,
        kernel: None,
    }
}

/// Run the scenario over real loopback TCP sockets: every message is
/// encoded, framed, crosses the kernel's network stack, and is decoded
/// on the far side. The third differential arm — agreement with
/// [`run_sim`] and [`run_thread`] proves the wire codec and socket
/// delivery path preserve the algorithm's semantics end to end.
pub fn run_socket(sc: &SyntheticScenario, theta: f64, mode: &DriverMode) -> RunOutput {
    let scenario = sc.clone();
    let mode = mode.clone();
    let outs = run_socket_cluster::<IterMsg<Vec<f64>>, _, _>(
        sc.p,
        SocketClusterOptions::default(),
        move |t| drive_synthetic(t, &scenario, theta, &mode),
    );
    let (fingerprints, stats) = outs.into_iter().unzip();
    RunOutput {
        fingerprints,
        stats,
        elapsed: 0.0,
        kernel: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::synthetic_scenario;
    use proptest::{Strategy, TestRng};

    #[test]
    fn sim_run_is_reproducible_bit_for_bit() {
        let sc = synthetic_scenario().sample(&mut TestRng::from_state(7));
        let mode = DriverMode::Speculative(SpecConfig::speculative(2));
        let a = run_sim(&sc, 0.2, &mode, TieBreak::Fifo);
        let b = run_sim(&sc, 0.2, &mode, TieBreak::Fifo);
        assert_eq!(a.fingerprints, b.fingerprints);
        assert_eq!(a.elapsed, b.elapsed);
    }

    #[test]
    fn baseline_mode_never_speculates() {
        let sc = synthetic_scenario().sample(&mut TestRng::from_state(8));
        let out = run_sim(&sc, 0.2, &DriverMode::Baseline, TieBreak::Fifo);
        assert_eq!(out.fingerprints.len(), sc.p);
        for s in &out.stats {
            assert_eq!(s.speculated_partitions, 0);
            assert_eq!(s.iterations, sc.iters);
        }
    }
}
