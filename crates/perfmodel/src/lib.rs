//! # perfmodel — the paper's §4 empirical performance model
//!
//! Implements equations 3–9 of Govindan & Franklin (1994): iteration-time
//! estimates for a synchronous iterative algorithm on `p` heterogeneous
//! processors, with and without speculative computation, plus the speedup
//! definitions used throughout the paper's evaluation.
//!
//! Notation (the paper's Table 1): `N` variables, per-variable operation
//! counts `f_comp`, `f_spec`, `f_check`, processor capacities `M_i`
//! (operations/second, fastest first), communication time `t_comm(p)`, and
//! misspeculation (recomputation) fraction `k`.

#![warn(missing_docs)]

mod model;
mod series;
mod tune;

pub use model::{CommModel, ModelError, ModelParams};
pub use series::{fig5_series, fig6_series, Fig5Row, Fig6Row};
pub use tune::{
    best_forward_window, best_p, k_break_even, masked_iteration_time, predicted_iteration_time,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_headline_numbers() {
        // §4: "speculative computation yields significant performance
        // benefits, up to 25% on 16 processors" with k = 2%, and "in the
        // 'no speculation' case, performance begins to decrease after
        // about 10 processors".
        let params = ModelParams::paper_example();
        let gain = params.speedup_spec(16) / params.speedup_nospec(16) - 1.0;
        assert!(
            (0.15..0.40).contains(&gain),
            "16-processor speculation gain {gain} out of the paper's ballpark"
        );

        // No-speculation speedup peaks before p = 16 and declines after.
        let peak_p = (1..=16)
            .max_by(|&a, &b| {
                params
                    .speedup_nospec(a)
                    .partial_cmp(&params.speedup_nospec(b))
                    .unwrap()
            })
            .unwrap();
        assert!(
            (8..=12).contains(&peak_p),
            "no-spec peak at p={peak_p}, paper says about 10"
        );
        assert!(params.speedup_nospec(16) < params.speedup_nospec(peak_p));
    }

    #[test]
    fn speculation_gain_vanishes_for_small_p() {
        // §4: "Speculative computation has very little impact for small
        // processor systems (2 to 5 processors)."
        let params = ModelParams::paper_example();
        for p in 2..=4 {
            let gain = params.speedup_spec(p) / params.speedup_nospec(p) - 1.0;
            assert!(
                gain.abs() < 0.06,
                "gain at p={p} should be small, got {gain}"
            );
        }
    }

    #[test]
    fn fig6_crossover_near_ten_percent() {
        // §4 / Figure 6: "Speculation yields performance gain over the no
        // speculation case for errors less than 10%."
        let params = ModelParams::paper_example();
        let base = params.speedup_nospec(8);
        let at = |k: f64| params.with_k(k).speedup_spec(8);
        assert!(at(0.02) > base, "2% error must still win");
        assert!(at(0.30) < base, "30% error must lose");
        // Crossover between 5% and 20%.
        let mut crossover = None;
        let mut k = 0.0;
        while k <= 0.30 {
            if at(k) < base {
                crossover = Some(k);
                break;
            }
            k += 0.005;
        }
        let crossover = crossover.expect("speculation must eventually lose");
        assert!(
            (0.05..=0.20).contains(&crossover),
            "crossover at k={crossover}, paper says about 10%"
        );
    }
}
