//! Figure-series generators for the model's two plots.

use crate::model::ModelParams;

/// One point of Figure 5: speedup vs. processor count.
#[derive(Clone, Copy, Debug)]
pub struct Fig5Row {
    /// Processor count.
    pub p: usize,
    /// Speedup without speculation.
    pub no_spec: f64,
    /// Speedup with speculation (FW = 1 model).
    pub spec: f64,
    /// Maximum attainable speedup `Σ M_i / M_1`.
    pub max: f64,
}

/// Model speedups for `p = 1..=max_p` (the paper's Figure 5).
pub fn fig5_series(params: &ModelParams, max_p: usize) -> Vec<Fig5Row> {
    (1..=max_p)
        .map(|p| Fig5Row {
            p,
            no_spec: params.speedup_nospec(p),
            spec: params.speedup_spec(p),
            max: params.speedup_max(p),
        })
        .collect()
}

/// One point of Figure 6: speedup at a fixed processor count vs. the
/// recomputation percentage `k`.
#[derive(Clone, Copy, Debug)]
pub struct Fig6Row {
    /// Recomputation fraction `k`.
    pub k: f64,
    /// Speedup with speculation at this `k`.
    pub spec: f64,
    /// Speedup without speculation (independent of `k`).
    pub no_spec: f64,
}

/// Model speedups on `p` processors across recomputation fractions `ks`
/// (the paper's Figure 6, p = 8).
pub fn fig6_series(params: &ModelParams, p: usize, ks: &[f64]) -> Vec<Fig6Row> {
    let no_spec = params.speedup_nospec(p);
    ks.iter()
        .map(|&k| Fig6Row {
            k,
            spec: params.with_k(k).speedup_spec(p),
            no_spec,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_has_one_row_per_p() {
        let s = fig5_series(&ModelParams::paper_example(), 16);
        assert_eq!(s.len(), 16);
        assert_eq!(s[0].p, 1);
        assert!((s[0].no_spec - 1.0).abs() < 1e-12);
        assert!((s[0].max - 1.0).abs() < 1e-12);
        assert_eq!(s[15].p, 16);
    }

    #[test]
    fn fig5_spec_dominates_nospec_at_scale() {
        let s = fig5_series(&ModelParams::paper_example(), 16);
        for row in &s[7..] {
            assert!(
                row.spec >= row.no_spec,
                "speculation must not lose at p={} (spec {}, nospec {})",
                row.p,
                row.spec,
                row.no_spec
            );
            assert!(row.spec <= row.max + 1e-9);
        }
    }

    #[test]
    fn fig6_spec_declines_with_k() {
        let ks: Vec<f64> = (0..=20).map(|i| i as f64 * 0.01).collect();
        let s = fig6_series(&ModelParams::paper_example(), 8, &ks);
        for w in s.windows(2) {
            assert!(
                w[0].spec >= w[1].spec - 1e-12,
                "speedup must fall as k grows"
            );
        }
        // no_spec is flat.
        assert!(s.iter().all(|r| (r.no_spec - s[0].no_spec).abs() < 1e-12));
    }
}
