//! Equations 3–9 and the speedup definitions.

/// How per-iteration communication time scales with the processor count.
#[derive(Clone, Debug)]
pub enum CommModel {
    /// `t_comm(p) = coef · p` for `p > 1` — the paper's "communication
    /// time per iteration increases linearly with the number of
    /// processors".
    LinearInP {
        /// Seconds of communication per processor in the run.
        coef: f64,
    },
    /// `t_comm(p) = base + per_proc · p` for `p > 1`.
    Affine {
        /// Fixed per-iteration communication cost.
        base: f64,
        /// Additional cost per participating processor.
        per_proc: f64,
    },
    /// `t_comm(p) = coef · p²` for `p > 1` — each iteration moves
    /// `p·(p−1)` messages over a shared medium, so aggregate communication
    /// time grows quadratically once the medium saturates (the contention
    /// the paper blames for its post-10-processor decline).
    QuadraticInP {
        /// Seconds of communication per squared processor count.
        coef: f64,
    },
    /// Measured values: `table[p-1]` is `t_comm(p)`. Used when
    /// parameterizing the model from experiment data (Figure 9). Lookups
    /// beyond the table's end clamp to the last entry (an empty table
    /// reads as zero communication time) so that sweeps driven by the
    /// argmin helpers stay finite instead of panicking mid-search.
    Table(Vec<f64>),
}

impl CommModel {
    /// Per-iteration communication time on `p` processors. Zero for a
    /// single processor (nothing to exchange). Always finite for finite
    /// coefficients: `Table` lookups past the end clamp to the last
    /// entry rather than indexing out of bounds.
    pub fn t_comm(&self, p: usize) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        match self {
            CommModel::LinearInP { coef } => coef * p as f64,
            CommModel::Affine { base, per_proc } => base + per_proc * p as f64,
            CommModel::QuadraticInP { coef } => coef * (p * p) as f64,
            CommModel::Table(t) => match t.get(p - 1) {
                Some(v) => *v,
                None => t.last().copied().unwrap_or(0.0),
            },
        }
    }

    /// All coefficients (or table entries) are finite and non-negative.
    /// Degenerate models fail fast here instead of feeding NaN/∞ into the
    /// eq. 8/9 argmin helpers.
    pub fn is_well_formed(&self) -> bool {
        let ok = |v: f64| v.is_finite() && v >= 0.0;
        match self {
            CommModel::LinearInP { coef } | CommModel::QuadraticInP { coef } => ok(*coef),
            CommModel::Affine { base, per_proc } => ok(*base) && ok(*per_proc),
            CommModel::Table(t) => t.iter().all(|v| ok(*v)),
        }
    }
}

/// Why a [`ModelParams`] value cannot be evaluated by eqs. 3–9.
///
/// Returned by [`ModelParams::validate`], which the argmin/inverse helpers
/// in [`crate::tune`] call before searching so a degenerate parameter set
/// is a checked error instead of NaN/∞ silently winning the argmin.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ModelError {
    /// `capacities` is empty: there is no processor to run on.
    NoProcessors,
    /// A capacity `M_i` is zero, negative, or non-finite — eqs. 3–9 all
    /// divide by capacities, so this would produce ∞ or NaN.
    BadCapacity {
        /// Index of the offending entry in `capacities`.
        index: usize,
    },
    /// A scalar field (`n`, `f_comp`, `f_spec`, `f_check`, or `k`) is
    /// negative or non-finite.
    BadField {
        /// Name of the offending field.
        field: &'static str,
    },
    /// The communication model has a non-finite or negative coefficient.
    BadComm,
}

impl core::fmt::Display for ModelError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ModelError::NoProcessors => write!(f, "capacities is empty"),
            ModelError::BadCapacity { index } => {
                write!(f, "capacity M_{index} is not finite and positive")
            }
            ModelError::BadField { field } => {
                write!(f, "field {field} is not finite and non-negative")
            }
            ModelError::BadComm => write!(f, "communication model has a degenerate coefficient"),
        }
    }
}

/// The model's inputs (the paper's Table 1).
#[derive(Clone, Debug)]
pub struct ModelParams {
    /// Total number of variables `N`.
    pub n: f64,
    /// Operations to compute one variable, `f_comp`.
    pub f_comp: f64,
    /// Operations to speculate one variable, `f_spec`.
    pub f_spec: f64,
    /// Operations to check one variable, `f_check`.
    pub f_check: f64,
    /// Capacities `M_i` in operations/second, fastest first.
    pub capacities: Vec<f64>,
    /// Communication-time model `t_comm(p)`.
    pub comm: CommModel,
    /// Fraction of variables recomputed due to speculation error, `k`.
    pub k: f64,
}

impl ModelParams {
    /// The worked example of §4: `N = 1000`, 16 processors with capacities
    /// varying linearly and `M_1 = 10·M_16`, `t_comm(16)` equal to the
    /// computation time per iteration at `p = 16`, `k = 2%`.
    ///
    /// ## Reconciliation with the paper's stated constants
    ///
    /// Taken literally, the §4 constants `f_comp = 100·f_spec =
    /// 50·f_check` make the *slowest* machine of the 10:1 ramp spend more
    /// time checking `(N−N_i)·f_check/M_16` than computing — eq. 9 then
    /// predicts speculation *losing* ~45% at `p = 16`, contradicting the
    /// paper's own Figure 5 (+25%). The published example numbers are
    /// internally inconsistent with the published curves; the paper itself
    /// says its parameters are "close to the measured values for the
    /// N-body simulation example", whose measured per-variable costs
    /// (`70·N` compute, 12 speculate, 24 check) give *much* smaller
    /// speculation/check fractions. We therefore keep the paper's 2:1
    /// check:speculate ratio but at the N-body-like magnitude
    /// (`f_spec = f_comp/500`, `f_check = f_comp/250`), and let `t_comm`
    /// grow with the `p·(p−1)` message count (quadratic) — the contention
    /// the paper credits for the decline beyond ~10 processors. With these
    /// choices the model reproduces every feature the paper reports:
    /// ~25% gain at 16, negligible effect for 2–5 processors, a
    /// no-speculation peak near 10, and a Figure 6 crossover near k = 10%.
    pub fn paper_example() -> Self {
        let p_max = 16;
        let m1 = 100e6; // 100 "MIPS"; speedups are scale-invariant
        let m16 = m1 / 10.0;
        let capacities: Vec<f64> = (0..p_max)
            .map(|i| m1 - (i as f64 / (p_max - 1) as f64) * (m1 - m16))
            .collect();
        let n = 1000.0;
        let f_comp = 70_000.0; // shaped like the N-body kernel: 70·N ops/variable
        let total: f64 = capacities.iter().sum();
        let comp_time_16 = n * f_comp / total;
        ModelParams {
            n,
            f_comp,
            f_spec: f_comp / 500.0,
            f_check: f_comp / 250.0,
            capacities,
            comm: CommModel::QuadraticInP {
                coef: comp_time_16 / (p_max * p_max) as f64,
            },
            k: 0.02,
        }
    }

    /// Same parameters with a different recomputation fraction.
    pub fn with_k(&self, k: f64) -> Self {
        let mut p = self.clone();
        p.k = k;
        p
    }

    /// Check the parameter set is evaluable: at least one processor, all
    /// capacities finite and strictly positive, all scalar fields finite
    /// and non-negative, and a well-formed communication model.
    ///
    /// The boundary cases `p = 1` (no speculation: `t_hat(1) = t_total(1)`
    /// and every speedup is 1) and `k = 0` (no recomputation cost) are
    /// *valid* and return finite values; validation only rejects inputs
    /// that would make eqs. 3–9 produce NaN or ∞.
    pub fn validate(&self) -> Result<(), ModelError> {
        if self.capacities.is_empty() {
            return Err(ModelError::NoProcessors);
        }
        for (index, m) in self.capacities.iter().enumerate() {
            if !(m.is_finite() && *m > 0.0) {
                return Err(ModelError::BadCapacity { index });
            }
        }
        for (field, v) in [
            ("n", self.n),
            ("f_comp", self.f_comp),
            ("f_spec", self.f_spec),
            ("f_check", self.f_check),
            ("k", self.k),
        ] {
            if !(v.is_finite() && v >= 0.0) {
                return Err(ModelError::BadField { field });
            }
        }
        if !self.comm.is_well_formed() {
            return Err(ModelError::BadComm);
        }
        Ok(())
    }

    /// Σ of the fastest `p` capacities.
    fn total_capacity(&self, p: usize) -> f64 {
        assert!(p >= 1 && p <= self.capacities.len(), "p={p} out of range");
        self.capacities[..p].iter().sum()
    }

    /// Number of variables allocated to processor `i` (0-based) in a
    /// `p`-processor run — the continuous solution of eqs. 4–5:
    /// `N_i = N · M_i / Σ M`.
    pub fn n_alloc(&self, i: usize, p: usize) -> f64 {
        assert!(i < p);
        self.n * self.capacities[i] / self.total_capacity(p)
    }

    /// Eq. 3 / eq. 6: iteration time without speculation. For `p = 1` this
    /// is `N·f_comp/M_1`; otherwise balanced computation plus `t_comm(p)`.
    pub fn t_total(&self, p: usize) -> f64 {
        if p == 1 {
            return self.n * self.f_comp / self.capacities[0];
        }
        // With eq. 4 balancing, N_i·f_comp/M_i = N·f_comp/ΣM for every i.
        self.n * self.f_comp / self.total_capacity(p) + self.comm.t_comm(p)
    }

    /// Eq. 8: processor `i`'s iteration time with speculation (FW = 1).
    pub fn t_hat_i(&self, i: usize, p: usize) -> f64 {
        let m = self.capacities[i];
        let n_i = self.n_alloc(i, p);
        let others = self.n - n_i;
        let busy = others * self.f_spec / m + n_i * self.f_comp / m;
        busy.max(self.comm.t_comm(p)) + others * self.f_check / m + self.k * n_i * self.f_comp / m
    }

    /// Eq. 9: iteration time with speculation = max over processors.
    pub fn t_hat(&self, p: usize) -> f64 {
        if p == 1 {
            // Nothing to speculate on a single processor.
            return self.t_total(1);
        }
        (0..p)
            .map(|i| self.t_hat_i(i, p))
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Speedup without speculation, relative to the fastest processor.
    pub fn speedup_nospec(&self, p: usize) -> f64 {
        self.t_total(1) / self.t_total(p)
    }

    /// Speedup with speculation, relative to the fastest processor.
    pub fn speedup_spec(&self, p: usize) -> f64 {
        self.t_total(1) / self.t_hat(p)
    }

    /// `speedup_max(p) = Σ_{i≤p} M_i / M_1`.
    pub fn speedup_max(&self, p: usize) -> f64 {
        self.total_capacity(p) / self.capacities[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple(p: usize) -> ModelParams {
        ModelParams {
            n: 100.0,
            f_comp: 1000.0,
            f_spec: 10.0,
            f_check: 20.0,
            capacities: vec![1e6; p],
            comm: CommModel::Affine {
                base: 0.01,
                per_proc: 0.002,
            },
            k: 0.0,
        }
    }

    #[test]
    fn eq3_single_processor() {
        let m = simple(4);
        // 100 vars · 1000 ops / 1e6 ops/s = 0.1 s.
        assert!((m.t_total(1) - 0.1).abs() < 1e-12);
        assert!((m.speedup_nospec(1) - 1.0).abs() < 1e-12);
        assert!((m.speedup_spec(1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn eq6_adds_communication() {
        let m = simple(2);
        // Balanced compute on 2 procs: 0.05 s + t_comm(2) = 0.014.
        assert!((m.t_total(2) - (0.05 + 0.014)).abs() < 1e-12);
    }

    #[test]
    fn allocation_satisfies_eq4_and_eq5() {
        let m = ModelParams::paper_example();
        for p in [2usize, 7, 16] {
            let sum: f64 = (0..p).map(|i| m.n_alloc(i, p)).sum();
            assert!((sum - m.n).abs() < 1e-9, "eq. 5 violated at p={p}");
            let r0 = m.n_alloc(0, p) / m.capacities[0];
            for i in 1..p {
                let ri = m.n_alloc(i, p) / m.capacities[i];
                assert!((ri - r0).abs() < 1e-12, "eq. 4 violated at p={p}, i={i}");
            }
        }
    }

    #[test]
    fn eq8_reduces_to_compute_when_comm_is_free() {
        let mut m = simple(2);
        m.comm = CommModel::Affine {
            base: 0.0,
            per_proc: 0.0,
        };
        // busy = 50·1000/1e6 + 50·10/1e6; + check 50·20/1e6; k=0.
        let expected = 0.05 + 50.0 * 10.0 / 1e6 + 50.0 * 20.0 / 1e6;
        assert!((m.t_hat_i(0, 2) - expected).abs() < 1e-15);
    }

    #[test]
    fn eq8_is_dominated_by_comm_when_comm_is_huge() {
        let mut m = simple(2);
        m.comm = CommModel::Affine {
            base: 10.0,
            per_proc: 0.0,
        };
        // max(busy, 10) = 10, plus check time.
        let expected = 10.0 + 50.0 * 20.0 / 1e6;
        assert!((m.t_hat_i(0, 2) - expected).abs() < 1e-12);
    }

    #[test]
    fn recomputation_fraction_adds_cost_linearly() {
        let m = simple(2);
        let t0 = m.with_k(0.0).t_hat(2);
        let t50 = m.with_k(0.5).t_hat(2);
        let t100 = m.with_k(1.0).t_hat(2);
        assert!(
            (t50 - t0 - (t100 - t50)).abs() < 1e-15,
            "k enters eq. 8 linearly"
        );
        assert!(t100 > t50 && t50 > t0);
    }

    #[test]
    fn speedups_never_exceed_maximum() {
        let m = ModelParams::paper_example();
        for p in 1..=16 {
            let cap = m.speedup_max(p) + 1e-9;
            assert!(m.speedup_nospec(p) <= cap);
            assert!(m.speedup_spec(p) <= cap);
        }
    }

    #[test]
    fn comm_table_lookup() {
        let c = CommModel::Table(vec![0.0, 0.5, 0.7]);
        assert_eq!(c.t_comm(1), 0.0);
        assert_eq!(c.t_comm(2), 0.5);
        assert_eq!(c.t_comm(3), 0.7);
    }

    #[test]
    fn comm_table_clamps_past_the_end() {
        // A table parameterized from a 3-processor experiment must stay
        // finite when an argmin sweep probes larger p.
        let c = CommModel::Table(vec![0.0, 0.5, 0.7]);
        assert_eq!(c.t_comm(4), 0.7);
        assert_eq!(c.t_comm(100), 0.7);
        let empty = CommModel::Table(vec![]);
        assert_eq!(empty.t_comm(5), 0.0);
    }

    #[test]
    fn validate_accepts_p1_and_k0_boundaries() {
        let mut m = simple(1);
        m.k = 0.0;
        assert_eq!(m.validate(), Ok(()));
        // And the boundary values themselves are finite and documented:
        // single processor means no speculation effect, zero k means no
        // recomputation term.
        assert!(m.t_hat(1).is_finite());
        assert_eq!(m.t_hat(1), m.t_total(1));
        assert_eq!(m.speedup_spec(1), 1.0);
        assert_eq!(m.speedup_nospec(1), 1.0);
        assert_eq!(m.speedup_max(1), 1.0);
    }

    #[test]
    fn validate_rejects_degenerate_parameters() {
        let base = simple(2);

        let mut m = base.clone();
        m.capacities.clear();
        assert_eq!(m.validate(), Err(ModelError::NoProcessors));

        let mut m = base.clone();
        m.capacities[1] = 0.0;
        assert_eq!(m.validate(), Err(ModelError::BadCapacity { index: 1 }));

        let mut m = base.clone();
        m.capacities[0] = f64::INFINITY;
        assert_eq!(m.validate(), Err(ModelError::BadCapacity { index: 0 }));

        let mut m = base.clone();
        m.f_comp = f64::NAN;
        assert_eq!(m.validate(), Err(ModelError::BadField { field: "f_comp" }));

        let mut m = base.clone();
        m.k = -0.1;
        assert_eq!(m.validate(), Err(ModelError::BadField { field: "k" }));

        let mut m = base.clone();
        m.comm = CommModel::Affine {
            base: f64::NAN,
            per_proc: 0.0,
        };
        assert_eq!(m.validate(), Err(ModelError::BadComm));
        assert!(!m.comm.is_well_formed());
    }

    #[test]
    fn model_error_display_is_descriptive() {
        assert_eq!(ModelError::NoProcessors.to_string(), "capacities is empty");
        assert!(ModelError::BadCapacity { index: 3 }
            .to_string()
            .contains("M_3"));
        assert!(ModelError::BadField { field: "k" }
            .to_string()
            .contains("k"));
    }

    #[test]
    fn heterogeneous_max_is_on_slowest() {
        // With unequal speeds the speculative iteration time is set by a
        // slower processor (speculation/check load imbalance, §4).
        let m = ModelParams::paper_example();
        let p = 16;
        let slowest = m.t_hat_i(p - 1, p);
        assert!((m.t_hat(p) - slowest).abs() <= m.t_hat(p) * 1e-12);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Speculation gain over no-speculation is bounded below by the
        /// pure-overhead case: with k=0 and zero comm time, speculation
        /// can only lose (overhead), never win.
        #[test]
        fn no_comm_means_no_gain(
            n in 10.0f64..10_000.0,
            f_comp in 10.0f64..1e5,
            procs in 2usize..12,
        ) {
            let m = ModelParams {
                n,
                f_comp,
                f_spec: f_comp / 100.0,
                f_check: f_comp / 50.0,
                capacities: vec![1e6; procs],
                comm: CommModel::Affine { base: 0.0, per_proc: 0.0 },
                k: 0.0,
            };
            prop_assert!(m.t_hat(procs) >= m.t_total(procs));
        }

        /// t_hat is monotone nondecreasing in k.
        #[test]
        fn t_hat_monotone_in_k(k1 in 0.0f64..1.0, k2 in 0.0f64..1.0) {
            let m = ModelParams::paper_example();
            let (lo, hi) = if k1 <= k2 { (k1, k2) } else { (k2, k1) };
            prop_assert!(m.with_k(lo).t_hat(8) <= m.with_k(hi).t_hat(8) + 1e-15);
        }

        /// Adding a processor never increases total capacity-normalized
        /// compute time (the compute term of eq. 6 shrinks with p).
        #[test]
        fn compute_term_shrinks_with_p(p in 2usize..16) {
            let m = ModelParams::paper_example();
            let compute = |p: usize| m.n * m.f_comp / m.capacities[..p].iter().sum::<f64>();
            prop_assert!(compute(p) >= compute(p + 1) - 1e-12);
        }
    }
}
