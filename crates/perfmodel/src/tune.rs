//! Prescriptive helpers over eqs. 3–9: argmin and inverse queries.
//!
//! §4's model is descriptive — it predicts iteration time for a *given*
//! configuration. The adaptive controller (`speccore::control`) needs the
//! prescriptive direction: *choose* the forward window, processor count, or
//! break-even misspeculation fraction that minimizes predicted iteration
//! time. These helpers answer those queries deterministically (pure
//! functions, ties broken toward the smaller argument) so online retuning
//! decisions are reproducible bit-for-bit across runs and backends.
//!
//! All searches are over validated parameters ([`ModelParams::validate`]):
//! a degenerate parameter set is a checked [`ModelError`], never a NaN that
//! silently wins a comparison.

use crate::model::{ModelError, ModelParams};

/// Predicted per-iteration time with a forward window of `fw`, from
/// measured per-confirmation quantities (any consistent time unit).
///
/// Generalizes the masking term of eq. 8: each additional window of depth
/// beyond the first overlaps one more busy period against the outstanding
/// communication delay, so the unmasked stall shrinks from
/// `comm − busy` (FW = 1) to `comm − fw·busy`:
///
/// `t(fw) = max(busy, comm − (fw − 1)·busy) + check + miss_penalty(fw)`
///
/// where `miss_penalty(fw) = Pr[≥1 miss in fw] · busy · (fw + 1)/2` — a
/// misspeculation anywhere in the window rolls back and re-executes on
/// average half the window. `fw = 0` (no speculation) degenerates to
/// `busy + comm` with no check or miss cost, matching eq. 3/6.
///
/// Non-finite or negative inputs yield `f64::INFINITY` so they can never
/// win an argmin.
pub fn masked_iteration_time(busy: f64, comm: f64, check: f64, miss_rate: f64, fw: u32) -> f64 {
    let ok = |v: f64| v.is_finite() && v >= 0.0;
    if !(ok(busy) && ok(comm) && ok(check) && ok(miss_rate) && miss_rate <= 1.0) {
        return f64::INFINITY;
    }
    if fw == 0 {
        return busy + comm;
    }
    let w = f64::from(fw);
    let stall = (comm - (w - 1.0) * busy).max(busy);
    let p_miss = 1.0 - (1.0 - miss_rate).powi(fw as i32);
    stall + check + p_miss * busy * (w + 1.0) / 2.0
}

/// Smallest forward window in `1..=fw_max` minimizing
/// [`masked_iteration_time`]; ties go to the shallower window (less state,
/// cheaper rollback). `fw_max = 0` is treated as 1.
pub fn best_forward_window(busy: f64, comm: f64, check: f64, miss_rate: f64, fw_max: u32) -> u32 {
    let mut best_w = 1u32;
    let mut best_t = masked_iteration_time(busy, comm, check, miss_rate, 1);
    for w in 2..=fw_max.max(1) {
        let t = masked_iteration_time(busy, comm, check, miss_rate, w);
        if t < best_t {
            best_t = t;
            best_w = w;
        }
    }
    best_w
}

/// Processor count in `1..=p_max` (clamped to the capacity list) that
/// minimizes eq. 9's speculative iteration time, with the time at the
/// argmin. Ties go to fewer processors.
pub fn best_p(params: &ModelParams, p_max: usize) -> Result<(usize, f64), ModelError> {
    params.validate()?;
    let hi = p_max.clamp(1, params.capacities.len());
    let mut best = (1usize, params.t_hat(1));
    for p in 2..=hi {
        let t = params.t_hat(p);
        if t < best.1 {
            best = (p, t);
        }
    }
    Ok(best)
}

/// The break-even misspeculation fraction at `p` processors: the largest
/// `k` in `[0, 1]` for which eq. 9 still beats eq. 6 (`t_hat ≤ t_total`),
/// found by bisection — the Figure 6 crossover, computed rather than read
/// off the plot.
///
/// Returns `0.0` when speculation loses even at `k = 0` (overhead exceeds
/// the masked communication) and `1.0` when it wins everywhere.
pub fn k_break_even(params: &ModelParams, p: usize) -> Result<f64, ModelError> {
    params.validate()?;
    if p <= 1 || p > params.capacities.len() {
        // No speculation on one processor; nothing to break even against.
        return Ok(0.0);
    }
    let beats = |k: f64| params.with_k(k).t_hat(p) <= params.t_total(p);
    if !beats(0.0) {
        return Ok(0.0);
    }
    if beats(1.0) {
        return Ok(1.0);
    }
    let (mut lo, mut hi) = (0.0f64, 1.0f64);
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if beats(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok(lo)
}

/// Eq. 9 guarded by validation: `t_hat(p)` as a checked query, with `p`
/// clamped into `1..=capacities.len()`. This is the form the controller
/// calls — it can never observe a panic or a non-finite prediction from a
/// well-formed parameter set.
pub fn predicted_iteration_time(params: &ModelParams, p: usize) -> Result<f64, ModelError> {
    params.validate()?;
    Ok(params.t_hat(p.clamp(1, params.capacities.len())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::CommModel;

    fn simple(p: usize) -> ModelParams {
        ModelParams {
            n: 100.0,
            f_comp: 1000.0,
            f_spec: 10.0,
            f_check: 20.0,
            capacities: vec![1e6; p],
            comm: CommModel::Affine {
                base: 0.01,
                per_proc: 0.002,
            },
            k: 0.02,
        }
    }

    #[test]
    fn masked_iteration_time_matches_eq8_shape_at_fw1() {
        // FW = 1 is eq. 8: max(busy, comm) + check (+ miss penalty).
        let t = masked_iteration_time(2.0, 5.0, 0.5, 0.0, 1);
        assert_eq!(t, 5.0 + 0.5);
        // Compute-bound case: comm fully masked.
        let t = masked_iteration_time(5.0, 2.0, 0.5, 0.0, 1);
        assert_eq!(t, 5.0 + 0.5);
        // FW = 0 degenerates to the no-speculation eq. 3/6 shape.
        assert_eq!(masked_iteration_time(2.0, 5.0, 0.5, 0.0, 0), 7.0);
    }

    #[test]
    fn masked_iteration_time_never_returns_nan() {
        for bad in [f64::NAN, f64::INFINITY, -1.0] {
            assert_eq!(masked_iteration_time(bad, 1.0, 0.1, 0.0, 2), f64::INFINITY);
            assert_eq!(masked_iteration_time(1.0, bad, 0.1, 0.0, 2), f64::INFINITY);
            assert_eq!(masked_iteration_time(1.0, 1.0, bad, 0.0, 2), f64::INFINITY);
            assert_eq!(masked_iteration_time(1.0, 1.0, 0.1, bad, 2), f64::INFINITY);
        }
        assert_eq!(
            masked_iteration_time(1.0, 1.0, 0.1, 1.5, 2),
            f64::INFINITY,
            "miss rate above 1 is degenerate"
        );
    }

    #[test]
    fn best_forward_window_deepens_with_delay() {
        // With busy 2 and comm 7, FW must grow until 2·fw masks the delay.
        let w = best_forward_window(2.0, 7.0, 0.1, 0.0, 8);
        assert!(w >= 3, "needs ≥3 windows to mask 7s at 2s busy, got {w}");
        // No delay: stay shallow.
        assert_eq!(best_forward_window(2.0, 0.0, 0.1, 0.0, 8), 1);
        // High miss rate: the rollback penalty pins the window shallow
        // even under large delay.
        let wm = best_forward_window(2.0, 7.0, 0.1, 0.9, 8);
        assert!(wm <= w, "misses must not deepen the window");
        // Degenerate fw_max is clamped to 1.
        assert_eq!(best_forward_window(2.0, 7.0, 0.1, 0.0, 0), 1);
        // Non-finite telemetry can never panic the search.
        assert_eq!(best_forward_window(f64::NAN, 7.0, 0.1, 0.0, 4), 1);
    }

    #[test]
    fn best_p_finds_the_paper_peak() {
        // Figure 5's speculative curve peaks at the largest p for the
        // paper parameters before contention dominates.
        let m = ModelParams::paper_example();
        let (p, t) = best_p(&m, 16).unwrap();
        assert!(t.is_finite());
        assert!((2..=16).contains(&p));
        // The returned time really is the minimum over the swept range.
        for q in 1..=16 {
            assert!(m.t_hat(q) >= t - 1e-12);
        }
        // Degenerate params are a checked error, not NaN.
        let mut bad = simple(2);
        bad.capacities[0] = 0.0;
        assert!(best_p(&bad, 4).is_err());
    }

    #[test]
    fn best_p_clamps_range_to_capacities() {
        let m = simple(3);
        let (p, _) = best_p(&m, 100).unwrap();
        assert!(p <= 3);
        let (p1, t1) = best_p(&m, 0).unwrap();
        assert_eq!(p1, 1);
        assert_eq!(t1, m.t_total(1));
    }

    #[test]
    fn k_break_even_matches_fig6_crossover() {
        let m = ModelParams::paper_example();
        let k = k_break_even(&m, 8).unwrap();
        // The headline test pins the crossover between 5% and 20%; the
        // bisected inverse must land in the same band.
        assert!((0.05..=0.20).contains(&k), "crossover at k={k}");
        // And it is a genuine fixed point: just below wins, just above loses.
        assert!(m.with_k(k - 1e-3).t_hat(8) <= m.t_total(8));
        assert!(m.with_k(k + 1e-3).t_hat(8) > m.t_total(8));
    }

    #[test]
    fn k_break_even_boundary_cases() {
        // p = 1: no speculation, break-even is 0 by definition.
        assert_eq!(k_break_even(&simple(4), 1).unwrap(), 0.0);
        // Zero comm: speculation is pure overhead, loses even at k = 0.
        let mut m = simple(4);
        m.comm = CommModel::Affine {
            base: 0.0,
            per_proc: 0.0,
        };
        assert_eq!(k_break_even(&m, 4).unwrap(), 0.0);
        // Enormous comm with zero check overhead: wins everywhere.
        let mut m = simple(4);
        m.f_check = 0.0;
        m.comm = CommModel::Affine {
            base: 1e6,
            per_proc: 0.0,
        };
        assert_eq!(k_break_even(&m, 4).unwrap(), 1.0);
        // Degenerate parameters are checked.
        let mut bad = simple(2);
        bad.n = f64::NAN;
        assert!(k_break_even(&bad, 2).is_err());
    }

    #[test]
    fn predicted_iteration_time_is_checked_and_clamped() {
        let m = simple(4);
        assert_eq!(predicted_iteration_time(&m, 4).unwrap(), m.t_hat(4));
        // Out-of-range p clamps instead of panicking.
        assert_eq!(predicted_iteration_time(&m, 100).unwrap(), m.t_hat(4));
        assert_eq!(predicted_iteration_time(&m, 0).unwrap(), m.t_hat(1));
        let mut bad = m.clone();
        bad.capacities[2] = -1.0;
        assert!(predicted_iteration_time(&bad, 2).is_err());
    }
}
