#!/usr/bin/env bash
# Transport regression gate: compare the fresh BENCH_transport.json
# against the checked-in per-row throughput budgets and fail CI when any
# backend×mode row has regressed by more than 25%.
#
# The artifact's `exchange` rows (full vs delta bytes-on-wire of the
# N-body exchange phase, measured deterministically on the simulator)
# are gated the opposite way: each row must stay *under* its checked-in
# byte ceiling, and the delta row must stay at least MIN_DELTA_RATIO x
# cheaper per iteration than the full row.
#
# Usage:
#   ci/bench_gate.sh                    # gate against ci/bench_budgets.json
#   BENCH_UPDATE_BUDGETS=1 ci/bench_gate.sh
#                                       # rewrite the budgets from the
#                                       # fresh artifact (commit the diff)
#
# The artifact is produced by the transport_regression bench
# (crates/bench/benches/transport_regression.rs); ci.sh runs that bench
# immediately before this gate, so the comparison is always against
# numbers measured on the machine running CI. Budgets are therefore
# machine-relative: refresh them (BENCH_UPDATE_BUDGETS=1) when moving CI
# to slower or faster hardware, and commit the regenerated file.
#
# A budget is a *guaranteed-attainable floor*, not a peak: the update
# path writes half the measured best-of-9 throughput, absorbing the
# host-level variance shared CI machines exhibit between invocations.
# The 25% tolerance then sits on top of that floor, so the gate trips on
# real structural regressions (an accidental sleep, a quadratic copy, a
# lost fast path) rather than on a noisy neighbour.
set -euo pipefail
cd "$(dirname "$0")/.."

ARTIFACT="${BENCH_TRANSPORT_ARTIFACT:-BENCH_transport.json}"
SCALE_ARTIFACT="${BENCH_SCALE_ARTIFACT:-BENCH_scale.json}"
CONTROLLER_ARTIFACT="${BENCH_CONTROLLER_ARTIFACT:-BENCH_controller.json}"
BUDGETS="ci/bench_budgets.json"
# A row fails when fresh < budget * TOLERANCE (i.e. >25% regression).
TOLERANCE="0.75"
# The delta exchange row must move at least this many times fewer bytes
# per iteration than the full row (the PR 7 acceptance bar).
MIN_DELTA_RATIO="3.0"

if ! command -v jq >/dev/null 2>&1; then
    echo "bench gate: jq not found; skipping (gate requires jq)" >&2
    exit 0
fi

if [[ ! -f "$ARTIFACT" ]]; then
    echo "bench gate: $ARTIFACT missing — run the transport_regression bench first:" >&2
    echo "  SPEC_BENCH_OUT=\"\$PWD\" cargo bench -q -p spec-bench --bench transport_regression" >&2
    exit 1
fi

if [[ "${BENCH_UPDATE_BUDGETS:-0}" == "1" ]]; then
    # Throughput budgets are floors (half the measured best absorbs host
    # variance); byte ceilings are caps with 25% headroom over the
    # deterministic measurement, so codec bloat trips the gate while a
    # deliberate format change only needs a committed refresh.
    jq '{budgets: (.rows | map({key: "\(.backend)_\(.mode)", value: (.msgs_per_sec * 0.5 | floor)}) | from_entries),
         byte_ceilings: ((.exchange // []) | map({key: "nbody_\(.mode)", value: (.bytes_per_iter * 1.25 | ceil)}) | from_entries)}' \
        "$ARTIFACT" >"$BUDGETS"
    if [[ -f "$SCALE_ARTIFACT" ]]; then
        # Scale floors are half the measured event throughput (host
        # variance); RSS ceilings get 4x headroom plus a 4 KiB constant
        # because VmHWM deltas are quantized to pages.
        jq --slurpfile scale "$SCALE_ARTIFACT" \
           '. + {scale_floors: ($scale[0].rows | map({key: "ranks_\(.ranks)", value: (.events_per_sec * 0.5 | floor)}) | from_entries),
                 scale_rss_ceilings: ($scale[0].rows | map({key: "ranks_\(.ranks)", value: (.rss_bytes_per_rank * 4 + 4096 | ceil)}) | from_entries)}' \
           "$BUDGETS" >"$BUDGETS.tmp" && mv "$BUDGETS.tmp" "$BUDGETS"
    fi
    if [[ -f "$CONTROLLER_ARTIFACT" ]]; then
        # The controller ratio is a deterministic virtual-time number, so
        # its ceiling needs only a thin 5% allowance over the measurement
        # (and never below 1.05: matching the best fixed point is the
        # acceptance bar, not beating it).
        jq --slurpfile ctl "$CONTROLLER_ARTIFACT" \
           '. + {controller: {ratio_ceiling: (([$ctl[0].ratio * 1.05, 1.05] | max * 1000 | ceil) / 1000)}}' \
           "$BUDGETS" >"$BUDGETS.tmp" && mv "$BUDGETS.tmp" "$BUDGETS"
    fi
    echo "bench gate: rewrote $BUDGETS from $ARTIFACT (+ $SCALE_ARTIFACT / $CONTROLLER_ARTIFACT if present):"
    cat "$BUDGETS"
    exit 0
fi

if [[ ! -f "$BUDGETS" ]]; then
    echo "bench gate: $BUDGETS missing — bootstrap with BENCH_UPDATE_BUDGETS=1 ci/bench_gate.sh" >&2
    exit 1
fi

fail=0
while IFS=$'\t' read -r key fresh; do
    budget=$(jq -r --arg k "$key" '.budgets[$k] // empty' "$BUDGETS")
    if [[ -z "$budget" ]]; then
        echo "FAIL  $key: no budget in $BUDGETS (add it with BENCH_UPDATE_BUDGETS=1)"
        fail=1
        continue
    fi
    floor=$(jq -n --argjson b "$budget" --argjson t "$TOLERANCE" '$b * $t')
    ok=$(jq -n --argjson f "$fresh" --argjson fl "$floor" '$f >= $fl')
    pct=$(jq -n --argjson f "$fresh" --argjson b "$budget" '100 * $f / $b | floor')
    if [[ "$ok" == "true" ]]; then
        printf 'ok    %-18s %12.0f msgs/s  (budget %s, %s%%)\n' "$key" "$fresh" "$budget" "$pct"
    else
        printf 'FAIL  %-18s %12.0f msgs/s  < 75%% of budget %s (%s%%)\n' "$key" "$fresh" "$budget" "$pct"
        fail=1
    fi
done < <(jq -r '.rows[] | "\(.backend)_\(.mode)\t\(.msgs_per_sec)"' "$ARTIFACT")

# Every budgeted row must also be present in the artifact, so deleting a
# bench row can't silently pass the gate.
while IFS= read -r key; do
    present=$(jq -r --arg k "$key" '.rows | map("\(.backend)_\(.mode)") | index($k) != null' "$ARTIFACT")
    if [[ "$present" != "true" ]]; then
        echo "FAIL  $key: budgeted row missing from $ARTIFACT"
        fail=1
    fi
done < <(jq -r '.budgets | keys[]' "$BUDGETS")

# Bytes-on-wire ceilings: each exchange row must come in at or under its
# checked-in cap (these are deterministic virtual-time counters, so any
# increase is a real codec/protocol change, not noise).
while IFS=$'\t' read -r key fresh; do
    ceiling=$(jq -r --arg k "$key" '.byte_ceilings[$k] // empty' "$BUDGETS")
    if [[ -z "$ceiling" ]]; then
        echo "FAIL  $key: no byte ceiling in $BUDGETS (add it with BENCH_UPDATE_BUDGETS=1)"
        fail=1
        continue
    fi
    ok=$(jq -n --argjson f "$fresh" --argjson c "$ceiling" '$f <= $c')
    if [[ "$ok" == "true" ]]; then
        printf 'ok    %-18s %12.0f bytes/iter  (ceiling %s)\n' "$key" "$fresh" "$ceiling"
    else
        printf 'FAIL  %-18s %12.0f bytes/iter  > ceiling %s\n' "$key" "$fresh" "$ceiling"
        fail=1
    fi
done < <(jq -r '(.exchange // [])[] | "nbody_\(.mode)\t\(.bytes_per_iter)"' "$ARTIFACT")

# Every byte-ceilinged row must be present in the artifact.
while IFS= read -r key; do
    present=$(jq -r --arg k "$key" '(.exchange // []) | map("nbody_\(.mode)") | index($k) != null' "$ARTIFACT")
    if [[ "$present" != "true" ]]; then
        echo "FAIL  $key: byte-ceilinged row missing from $ARTIFACT"
        fail=1
    fi
done < <(jq -r '(.byte_ceilings // {}) | keys[]' "$BUDGETS")

# The headline claim: delta encoding keeps the steady-state exchange at
# least MIN_DELTA_RATIO x cheaper in bytes/iteration than full frames.
ratio=$(jq -r '(.exchange // []) | map({(.mode): .bytes_per_iter}) | add // {}
               | if .full and .delta then (.full / .delta) else empty end' "$ARTIFACT")
if [[ -z "$ratio" ]]; then
    echo "FAIL  exchange rows (full + delta) missing from $ARTIFACT"
    fail=1
else
    ok=$(jq -n --argjson r "$ratio" --argjson m "$MIN_DELTA_RATIO" '$r >= $m')
    if [[ "$ok" == "true" ]]; then
        printf 'ok    %-18s %12.1fx bytes saved  (must be >= %sx)\n' "full/delta" "$ratio" "$MIN_DELTA_RATIO"
    else
        printf 'FAIL  %-18s %12.1fx bytes saved  < required %sx\n' "full/delta" "$ratio" "$MIN_DELTA_RATIO"
        fail=1
    fi
fi

# ---------------------------------------------------------------------------
# Stackless scale sweep (BENCH_scale.json): every row's kernel event
# throughput must hold above its checked-in floor, and its peak-RSS
# growth per rank must stay under its ceiling. The 10000-rank row is the
# acceptance anchor (a 10k-rank sim with zero OS threads per rank) and
# must always be present.
if [[ -f "$SCALE_ARTIFACT" ]]; then
    present=$(jq -r '.rows | map(.ranks) | index(10000) != null' "$SCALE_ARTIFACT")
    if [[ "$present" != "true" ]]; then
        echo "FAIL  scale: 10000-rank row missing from $SCALE_ARTIFACT"
        fail=1
    fi
    while IFS=$'\t' read -r ranks eps rss; do
        key="ranks_${ranks}"
        floor=$(jq -r --arg k "$key" '.scale_floors[$k] // empty' "$BUDGETS")
        ceiling=$(jq -r --arg k "$key" '.scale_rss_ceilings[$k] // empty' "$BUDGETS")
        if [[ -z "$floor" || -z "$ceiling" ]]; then
            echo "FAIL  $key: no scale budget in $BUDGETS (add it with BENCH_UPDATE_BUDGETS=1)"
            fail=1
            continue
        fi
        ok=$(jq -n --argjson f "$eps" --argjson fl "$floor" --argjson t "$TOLERANCE" '$f >= $fl * $t')
        if [[ "$ok" == "true" ]]; then
            printf 'ok    %-18s %12.0f events/s  (floor %s)\n' "$key" "$eps" "$floor"
        else
            printf 'FAIL  %-18s %12.0f events/s  < 75%% of floor %s\n' "$key" "$eps" "$floor"
            fail=1
        fi
        ok=$(jq -n --argjson r "$rss" --argjson c "$ceiling" '$r <= $c')
        if [[ "$ok" == "true" ]]; then
            printf 'ok    %-18s %12.0f rss B/rank  (ceiling %s)\n' "$key" "$rss" "$ceiling"
        else
            printf 'FAIL  %-18s %12.0f rss B/rank  > ceiling %s\n' "$key" "$rss" "$ceiling"
            fail=1
        fi
    done < <(jq -r '.rows[] | "\(.ranks)\t\(.events_per_sec)\t\(.rss_bytes_per_rank)"' "$SCALE_ARTIFACT")
else
    echo "bench gate: $SCALE_ARTIFACT missing — run the scale_sweep bench first:" >&2
    echo "  SPEC_BENCH_OUT=\"\$PWD\" cargo bench -q -p spec-bench --bench scale_sweep" >&2
    fail=1
fi

# ---------------------------------------------------------------------------
# Adaptive controller sweep (BENCH_controller.json): the controller's
# makespan over the heterogeneous-delay scenario must stay within
# ratio_ceiling of the best fixed (θ, FW) grid point. These are exact
# virtual-time nanoseconds, so any drift is a real behaviour change in
# the controller, the driver, or the workload — never host noise.
if [[ -f "$CONTROLLER_ARTIFACT" ]]; then
    ceiling=$(jq -r '.controller.ratio_ceiling // empty' "$BUDGETS")
    if [[ -z "$ceiling" ]]; then
        echo "FAIL  controller: no ratio_ceiling in $BUDGETS (add it with BENCH_UPDATE_BUDGETS=1)"
        fail=1
    else
        n_rows=$(jq -r '.rows | length' "$CONTROLLER_ARTIFACT")
        retunes=$(jq -r '.adaptive_retunes' "$CONTROLLER_ARTIFACT")
        ratio=$(jq -r '.ratio' "$CONTROLLER_ARTIFACT")
        if [[ "$n_rows" -lt 2 ]]; then
            echo "FAIL  controller: fixed (θ, FW) grid missing from $CONTROLLER_ARTIFACT"
            fail=1
        fi
        if [[ "$retunes" -lt 1 ]]; then
            echo "FAIL  controller: adaptive run never retuned (adaptive_retunes=$retunes)"
            fail=1
        fi
        ok=$(jq -n --argjson r "$ratio" --argjson c "$ceiling" '$r <= $c')
        if [[ "$ok" == "true" ]]; then
            printf 'ok    %-18s %12.3f vs best fixed  (ceiling %s, %s retunes)\n' \
                "controller" "$ratio" "$ceiling" "$retunes"
        else
            printf 'FAIL  %-18s %12.3f vs best fixed  > ceiling %s\n' "controller" "$ratio" "$ceiling"
            fail=1
        fi
    fi
else
    echo "bench gate: $CONTROLLER_ARTIFACT missing — run the controller_sweep bench first:" >&2
    echo "  SPEC_BENCH_OUT=\"\$PWD\" cargo bench -q -p spec-bench --bench controller_sweep" >&2
    fail=1
fi

if [[ "$fail" != "0" ]]; then
    echo "bench gate: transport throughput regressed >25% (or rows drifted); see above." >&2
    echo "If the regression is intended, refresh budgets: BENCH_UPDATE_BUDGETS=1 ci/bench_gate.sh" >&2
    exit 1
fi
echo "bench gate: all transport, scale, and controller rows within budget."
