#!/usr/bin/env bash
# Test-coverage audit: enumerate the public functions of the perfmodel
# and workloads crates and report any that no test references.
#
# "Tested" means the function's name appears in test code somewhere in
# the workspace: a top-level tests/ file, a crate's tests/ directory, or
# an in-crate `#[cfg(test)]` module (test modules sit at the end of each
# source file by workspace convention, so everything from the first
# `#[cfg(test)]` marker onward counts).
#
# Usage:
#   ci/coverage_audit.sh            # informational: always exits 0
#   ci/coverage_audit.sh --strict   # exits 1 if any public fn is untested
#
# The audit is a heuristic (name-based), deliberately cheap and
# dependency-free. Close reported gaps with targeted unit tests in
# crates/speccheck/tests/coverage_gaps.rs.

set -euo pipefail
cd "$(dirname "$0")/.."

STRICT=0
[ "${1:-}" = "--strict" ] && STRICT=1

AUDITED_CRATES="perfmodel workloads desim"
# Individual modules audited without pulling in their whole crate (the
# adaptive controller's public surface is gated; the rest of speccore is
# covered by the conformance suites, which are behavioural, not
# name-based).
AUDITED_FILES="crates/speccore/src/control.rs"

# Build the test corpus: integration tests plus in-crate test modules.
CORPUS="$(mktemp)"
trap 'rm -f "$CORPUS"' EXIT
for f in tests/*.rs crates/*/tests/*.rs; do
  [ -f "$f" ] && cat "$f" >> "$CORPUS"
done
for f in crates/*/src/*.rs; do
  awk '/#\[cfg\(test\)\]/{on=1} on' "$f" >> "$CORPUS"
done

total=0
untested=0
audit_file() {
  src="$1"
  # Public functions declared outside test modules; skip trait-impl
  # methods by requiring the `pub` keyword (trait fns are not `pub`).
  fns=$(awk '/#\[cfg\(test\)\]/{exit} /^[[:space:]]*pub fn [a-z_]/{match($0, /pub fn [a-z_0-9]+/); print substr($0, RSTART+7, RLENGTH-7)}' "$src" | sort -u)
  for fn in $fns; do
    # Constructors/accessors named like std conventions give too many
    # false "tested" positives on bare-word search; require the call
    # shape `name(` or `::name` to count.
    total=$((total + 1))
    if grep -Eq "(\.|::| )$fn\(" "$CORPUS"; then
      echo "  tested    $fn  ($(basename "$src"))"
    else
      echo "  UNTESTED  $fn  ($(basename "$src"))"
      untested=$((untested + 1))
    fi
  done
}
for crate in $AUDITED_CRATES; do
  echo "== $crate =="
  for src in crates/$crate/src/*.rs; do
    audit_file "$src"
  done
done
for src in $AUDITED_FILES; do
  echo "== $src =="
  audit_file "$src"
done

echo
echo "coverage audit: $((total - untested))/$total public functions referenced by tests"
if [ "$untested" -gt 0 ]; then
  echo "gaps: $untested (close them in crates/speccheck/tests/coverage_gaps.rs)"
  [ "$STRICT" = "1" ] && exit 1
fi
exit 0
